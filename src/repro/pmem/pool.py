"""Persistent object pool over the simulated device (``pmemobj`` style).

Layout of the reserved log region (the pool's first ``log_segments``
segments)::

    [byte 0]         active flag (1 = a transaction's undo log is live)
    [bytes 16..]     undo records, one per transactional write:
                     [addr: 8B][length: 4B][old data: length B][valid: 1B]

The undo log holds one transaction at a time (records restart at offset 16
on every ``TX_BEGIN``), matching PMDK's per-transaction undo logs.  The
``valid`` byte is written *after* the record body, so a record torn by a
crash is never replayed.  :meth:`PersistentPool.recover` rolls back a
transaction that was active when the process died.
"""

from __future__ import annotations

import struct
from collections import deque

from repro.nvm.controller import MemoryController
from repro.pmem.transaction import Transaction

_LOG_HEADER_BYTES = 16
_RECORD_HEADER = struct.Struct("<QI")


class PersistentPool:
    """Segment-granularity allocator plus crash-consistent transactions.

    Args:
        controller: the NVM front-end backing the pool.
        log_segments: segments reserved for the undo-log region.
        recover: scan the log on construction and roll back a transaction
            left active by a crash (see :meth:`recover`).
    """

    def __init__(
        self,
        controller: MemoryController,
        log_segments: int = 2,
        recover: bool = False,
    ) -> None:
        if log_segments < 1 or log_segments >= controller.n_segments:
            raise ValueError("log_segments must leave allocatable space")
        self.controller = controller
        self.log_segments = log_segments
        self._log_capacity = log_segments * controller.segment_size
        self._log_head = _LOG_HEADER_BYTES
        self._free: deque[int] = deque(
            controller.segment_address(i)
            for i in range(log_segments, controller.n_segments)
        )
        self._allocated: set[int] = set()
        self.recovered_records = 0
        if recover:
            self.recover()

    @property
    def segment_size(self) -> int:
        """Object allocation granularity."""
        return self.controller.segment_size

    @property
    def capacity_objects(self) -> int:
        """Total allocatable segments in the pool."""
        return self.controller.n_segments - self.log_segments

    def alloc(self) -> int:
        """Claim one object segment; returns its address.

        Raises:
            RuntimeError: when the pool is exhausted.
        """
        if not self._free:
            raise RuntimeError("persistent pool is out of space")
        addr = self._free.popleft()
        self._allocated.add(addr)
        return addr

    def free(self, addr: int) -> None:
        """Return an object segment to the pool."""
        if addr not in self._allocated:
            raise KeyError(f"address {addr} is not allocated from this pool")
        self._allocated.discard(addr)
        self._free.append(addr)

    def mark_allocated(self, addr: int) -> None:
        """Re-register an address as live after recovery (allocator state is
        DRAM-resident; the application re-derives it from its own index)."""
        if addr in self._allocated:
            return
        try:
            self._free.remove(addr)
        except ValueError:
            raise KeyError(f"address {addr} is not a pool segment") from None
        self._allocated.add(addr)

    def read(self, addr: int, length: int) -> bytes:
        """Direct (non-transactional) read."""
        return self.controller.read(addr, length)

    def write(self, addr: int, data: bytes) -> None:
        """Direct (non-transactional, non-failure-atomic) write."""
        self.controller.write(addr, data)

    def transaction(self) -> Transaction:
        """Begin an undo-log transaction::

            with pool.transaction() as tx:
                tx.write(addr, new_bytes)
        """
        return Transaction(self)

    # ---------------------------------------------------------------- crash

    def recover(self) -> int:
        """Roll back a transaction left active by a crash.

        Scans the media-resident log: if the active flag is set, every
        *valid* undo record is replayed in reverse order, then the log is
        cleared.  Returns the number of records rolled back.
        """
        flag = self.controller.read(0, 1)[0]
        if flag != 1:
            return 0
        records = []
        offset = _LOG_HEADER_BYTES
        while offset + _RECORD_HEADER.size + 1 <= self._log_capacity:
            header = self._log_read(offset, _RECORD_HEADER.size)
            addr, length = _RECORD_HEADER.unpack(header)
            if length == 0 or length > self._log_capacity:
                break  # end of records (or torn header)
            record_end = offset + _RECORD_HEADER.size + length
            if record_end + 1 > self._log_capacity:
                break
            old = self._log_read(offset + _RECORD_HEADER.size, length)
            valid = self._log_read(record_end, 1)[0]
            if valid != 1:
                break  # torn record: it never took effect in place? No —
                # the in-place write happens only after the valid byte, so
                # nothing to undo beyond this point.
            records.append((addr, old))
            offset = record_end + 1
        for addr, old in reversed(records):
            self.controller.write(addr, old)
        self._log_finish()
        self.recovered_records = len(records)
        return len(records)

    # ------------------------------------------------- log-region internals

    def _log_begin(self) -> None:
        """TX_BEGIN: reset the record cursor and raise the active flag."""
        self._log_head = _LOG_HEADER_BYTES
        self._log_terminate(self._log_head)
        self.controller.write(0, b"\x01")

    def _log_record(self, addr: int, old: bytes) -> None:
        """Append one undo record and mark it valid."""
        body = _RECORD_HEADER.pack(addr, len(old)) + old
        if self._log_head + len(body) + 1 > self._log_capacity:
            raise RuntimeError(
                "undo log full: transaction touches more data than the log "
                f"region holds ({self._log_capacity - _LOG_HEADER_BYTES} B)"
            )
        self._log_write(self._log_head, body)
        # Terminate the scan past this record *before* validating it, so a
        # recovery scan never walks into a previous transaction's stale
        # records.
        self._log_terminate(self._log_head + len(body) + 1)
        # The valid byte is persisted only after the full record body.
        self._log_write(self._log_head + len(body), b"\x01")
        self._log_head += len(body) + 1

    def _log_terminate(self, offset: int) -> None:
        """Zero the next record header (length 0 ends the recovery scan)."""
        if offset + _RECORD_HEADER.size + 1 <= self._log_capacity:
            self._log_write(offset, b"\x00" * _RECORD_HEADER.size)

    def _log_rollback(self) -> None:
        """Abort path: replay this transaction's records in reverse."""
        records = []
        offset = _LOG_HEADER_BYTES
        while offset < self._log_head:
            header = self._log_read(offset, _RECORD_HEADER.size)
            addr, length = _RECORD_HEADER.unpack(header)
            old = self._log_read(offset + _RECORD_HEADER.size, length)
            records.append((addr, old))
            offset += _RECORD_HEADER.size + length + 1
        for addr, old in reversed(records):
            self.controller.write(addr, old)

    def _log_finish(self) -> None:
        """Clear the active flag; the log is logically empty."""
        self.controller.write(0, b"\x00")
        self._log_head = _LOG_HEADER_BYTES

    def _log_write(self, offset: int, data: bytes) -> None:
        """Segment-chunked write inside the log region."""
        seg = self.controller.segment_size
        cursor = 0
        while cursor < len(data):
            room = seg - ((offset + cursor) % seg)
            chunk = data[cursor : cursor + room]
            self.controller.write(offset + cursor, chunk)
            cursor += len(chunk)

    def _log_read(self, offset: int, length: int) -> bytes:
        """Segment-chunked read inside the log region."""
        seg = self.controller.segment_size
        out = b""
        while len(out) < length:
            room = seg - ((offset + len(out)) % seg)
            take = min(room, length - len(out))
            out += self.controller.read(offset + len(out), take)
        return out
