"""Persistent object pool over the simulated device (``pmemobj`` style).

Layout of the reserved log region (the pool's first ``log_segments``
segments)::

    [byte 0]         active flag (1 = a transaction's undo log is live)
    [bytes 16..]     undo records, one per transactional write:
                     [addr: 8B][length: 4B][old data: length B]
                     [crc32: 4B][valid: 1B]

The undo log holds one transaction at a time (records restart at offset 16
on every ``TX_BEGIN``), matching PMDK's per-transaction undo logs.  Each
record is guarded twice against tearing: the ``valid`` byte is pre-zeroed
*before* the record body is written and set to 1 only after the full body
and checksum have landed, and the CRC32 covers header plus old data, so a
record torn at any byte is never replayed.  :meth:`PersistentPool.recover`
rolls back a transaction that was active when the process died; it is
idempotent, so a crash *during* recovery is itself recoverable.

After the log the pool can reserve ``meta_segments`` further segments for
application metadata (the KV store keeps its persistent catalog there —
see :mod:`repro.pmem.catalog`); the remaining *object* segments are what
:meth:`alloc` hands out.
"""

from __future__ import annotations

import struct
import zlib
from collections import deque

from repro.nvm.controller import MemoryController
from repro.nvm.health import SegmentRetiredError
from repro.pmem.transaction import Transaction

_LOG_HEADER_BYTES = 16
_RECORD_HEADER = struct.Struct("<QI")
_RECORD_CRC = struct.Struct("<I")
#: Bytes after the old data: the CRC32 plus the valid byte.
_RECORD_TRAILER = _RECORD_CRC.size + 1


class PersistentPool:
    """Segment-granularity allocator plus crash-consistent transactions.

    Args:
        controller: the NVM front-end backing the pool.
        log_segments: segments reserved for the undo-log region.
        recover: scan the log on construction and roll back a transaction
            left active by a crash (see :meth:`recover`).
        meta_segments: segments reserved (after the log) for application
            metadata such as the KV store's persistent catalog; they are
            addressable through :meth:`read`/:meth:`write`/transactions but
            never handed out by :meth:`alloc`.
        faults: optional :class:`repro.testing.faults.FaultInjector`.  When
            set, the pool fires the ``"tx.begin"``, ``"tx.log"``,
            ``"tx.write"``, ``"tx.commit"`` and ``"recover.rollback"``
            sites; the write-capable ones (``tx.log``, ``tx.write``,
            ``recover.rollback``) support torn-write injection.
    """

    def __init__(
        self,
        controller: MemoryController,
        log_segments: int = 2,
        recover: bool = False,
        meta_segments: int = 0,
        faults=None,
    ) -> None:
        if log_segments < 1:
            raise ValueError("log_segments must be at least 1")
        if meta_segments < 0:
            raise ValueError("meta_segments must be non-negative")
        if log_segments + meta_segments >= controller.n_segments:
            raise ValueError("log_segments must leave allocatable space")
        self.controller = controller
        self.log_segments = log_segments
        self.meta_segments = meta_segments
        self.faults = faults
        self._log_capacity = log_segments * controller.segment_size
        self._log_head = _LOG_HEADER_BYTES
        self._tx_active = False
        self._free: deque[int] = deque(
            controller.segment_address(i)
            for i in range(self.object_start_segment, controller.n_segments)
        )
        # Companion set for O(1) membership/removal; the deque preserves
        # FIFO hand-out order and is cleaned lazily in :meth:`alloc`.
        self._free_set: set[int] = set(self._free)
        self._allocated: set[int] = set()
        self._retired: set[int] = set()
        self.recovered_records = 0
        if recover:
            self.recover()

    @property
    def segment_size(self) -> int:
        """Object allocation granularity."""
        return self.controller.segment_size

    @property
    def object_start_segment(self) -> int:
        """Index of the first object segment (after log + metadata)."""
        return self.log_segments + self.meta_segments

    @property
    def capacity_objects(self) -> int:
        """Total allocatable segments in the pool."""
        return self.controller.n_segments - self.object_start_segment

    @property
    def log_capacity_bytes(self) -> int:
        """Undo-record bytes one transaction may log (header excluded)."""
        return self._log_capacity - _LOG_HEADER_BYTES

    @staticmethod
    def record_overhead_bytes() -> int:
        """Log bytes one transactional write of ``n`` bytes costs, minus
        ``n`` (header + checksum + valid byte)."""
        return _RECORD_HEADER.size + _RECORD_TRAILER

    def meta_address(self, index: int) -> int:
        """Byte address of reserved metadata segment ``index``."""
        if not 0 <= index < self.meta_segments:
            raise IndexError(f"metadata segment {index} out of range")
        return (self.log_segments + index) * self.segment_size

    def object_address(self, index: int) -> int:
        """Byte address of object segment ``index`` (0-based)."""
        if not 0 <= index < self.capacity_objects:
            raise IndexError(f"object segment {index} out of range")
        return (self.object_start_segment + index) * self.segment_size

    def object_index(self, addr: int) -> int:
        """Object-segment index of address ``addr`` (inverse of
        :meth:`object_address`)."""
        self._check_object_address(addr)
        return addr // self.segment_size - self.object_start_segment

    def alloc(self) -> int:
        """Claim one object segment; returns its address.

        Raises:
            RuntimeError: when the pool is exhausted.
        """
        while self._free:
            addr = self._free.popleft()
            if addr in self._free_set:  # skip entries removed out of band
                self._free_set.discard(addr)
                self._allocated.add(addr)
                return addr
        raise RuntimeError("persistent pool is out of space")

    def free(self, addr: int) -> None:
        """Return an object segment to the pool.

        Raises:
            ValueError: when ``addr`` is not an object segment of this pool
                (log/metadata region, unaligned, or out of range).
            KeyError: on a double free (the segment is already free).
        """
        if addr not in self._allocated:
            self._check_object_address(addr)
            if addr in self._free_set:
                raise KeyError(
                    f"double free: address {addr} is already free in this pool"
                )
            raise KeyError(f"address {addr} is not allocated from this pool")
        self._allocated.discard(addr)
        self._free.append(addr)
        self._free_set.add(addr)

    def retire(self, addr: int) -> None:
        """Permanently pull an object segment out of circulation (its media
        exhausted verify-after-write's ECP capacity).  Accepts the address
        whether currently free or allocated; idempotent."""
        self._check_object_address(addr)
        self._free_set.discard(addr)
        self._allocated.discard(addr)
        self._retired.add(addr)

    def retired_addresses(self) -> set[int]:
        """Every object address retired from this pool."""
        return set(self._retired)

    def mark_allocated(self, addr: int) -> None:
        """Re-register an address as live after recovery (allocator state is
        DRAM-resident; the application re-derives it from the persistent
        catalog or its own index).  O(1) per call."""
        if addr in self._allocated:
            return
        if addr not in self._free_set:
            raise KeyError(f"address {addr} is not a pool segment")
        self._free_set.discard(addr)
        self._allocated.add(addr)

    def free_addresses(self) -> list[int]:
        """Every free object address, in hand-out order."""
        return [a for a in self._free if a in self._free_set]

    def allocated_addresses(self) -> set[int]:
        """Every currently allocated object address."""
        return set(self._allocated)

    def read(self, addr: int, length: int) -> bytes:
        """Direct (non-transactional) read."""
        return self.controller.read(addr, length)

    def write(self, addr: int, data: bytes) -> None:
        """Direct (non-transactional, non-failure-atomic) write."""
        self.controller.write(addr, data)

    def transaction(self) -> Transaction:
        """Begin an undo-log transaction::

            with pool.transaction() as tx:
                tx.write(addr, new_bytes)
        """
        return Transaction(self)

    def format(self) -> None:
        """Initialise the log header on fresh media.

        A brand-new (or randomly filled) device may carry a garbage active
        flag; formatting clears it so the first :meth:`recover` does not
        replay noise.  Call once when *creating* a pool on new media, never
        when re-opening existing data.
        """
        self.controller.write(0, b"\x00")
        self._log_head = _LOG_HEADER_BYTES
        self._tx_active = False

    # ---------------------------------------------------------------- crash

    def recover(self) -> int:
        """Roll back a transaction left active by a crash.

        Scans the media-resident log: if the active flag is set, every
        *intact* undo record (valid byte set and CRC matching) is replayed
        in reverse order, then the log is cleared.  Returns the number of
        records rolled back.

        Idempotent: the active flag is cleared only after every record has
        been replayed, so a crash mid-recovery (even one tearing a rollback
        write) is repaired by simply recovering again.
        """
        self.recovered_records = 0
        self._tx_active = False
        flag = self.controller.read(0, 1)[0]
        if flag != 1:
            return 0
        records = []
        offset = _LOG_HEADER_BYTES
        while (
            offset + _RECORD_HEADER.size + _RECORD_TRAILER <= self._log_capacity
        ):
            header = self._log_read(offset, _RECORD_HEADER.size)
            addr, length = _RECORD_HEADER.unpack(header)
            if length == 0 or length > self._log_capacity:
                break  # end of records (or torn header)
            record_end = offset + _RECORD_HEADER.size + length
            if record_end + _RECORD_TRAILER > self._log_capacity:
                break
            # The valid byte is written only after the full record body and
            # checksum; a record torn by a crash never has it set.
            valid = self._log_read(record_end + _RECORD_CRC.size, 1)[0]
            if valid != 1:
                break
            old = self._log_read(offset + _RECORD_HEADER.size, length)
            (crc_stored,) = _RECORD_CRC.unpack(
                self._log_read(record_end, _RECORD_CRC.size)
            )
            if crc_stored != (zlib.crc32(header + old) & 0xFFFFFFFF):
                break  # torn record masquerading behind a stale valid byte
            records.append((addr, old))
            offset = record_end + _RECORD_TRAILER
        for addr, old in reversed(records):
            self._fire(
                "recover.rollback",
                payload_len=len(old),
                payload_writer=lambda n, a=addr, o=old: (
                    self.controller.torn_program(a, o[:n])
                ),
            )
            try:
                self.controller.write(addr, old)
            except SegmentRetiredError:
                # The rollback write itself exhausted the segment: it was
                # restoring a not-yet-committed value onto dying media.
                # Retirement already bars the segment from placement; the
                # rollback stays best-effort for it.
                pass
        self._log_finish()
        self.recovered_records = len(records)
        return len(records)

    # ------------------------------------------------- log-region internals

    def _fire(self, site: str, **kwargs) -> None:
        """Hit a fault site when an injector is attached."""
        if self.faults is not None:
            self.faults.fire(site, **kwargs)

    def _log_begin(self) -> None:
        """TX_BEGIN: reset the record cursor and raise the active flag."""
        if self._tx_active:
            raise RuntimeError(
                "a transaction is already active on this pool; the undo log "
                "holds one transaction at a time"
            )
        self._fire("tx.begin")
        self._tx_active = True
        self._log_head = _LOG_HEADER_BYTES
        self._log_terminate(self._log_head)
        self.controller.write(0, b"\x01")

    def _log_record(self, addr: int, old: bytes) -> None:
        """Append one undo record and mark it valid."""
        body = _RECORD_HEADER.pack(addr, len(old)) + old
        total = len(body) + _RECORD_TRAILER
        if self._log_head + total > self._log_capacity:
            raise RuntimeError(
                "undo log full: transaction touches more data than the log "
                f"region holds ({self.log_capacity_bytes} B)"
            )
        head = self._log_head
        valid_offset = head + len(body) + _RECORD_CRC.size
        # Pre-zero the valid byte: the log region is reused across
        # transactions, so the offset may hold a stale 1 from an earlier
        # record — a torn body write must never pair with it.  The next
        # record's header sits right after the valid byte, so zeroing it
        # (which terminates a recovery scan before any stale records) rides
        # in the same write.
        tail_zero = 1
        if head + total + _RECORD_HEADER.size + _RECORD_TRAILER <= (
            self._log_capacity
        ):
            tail_zero += _RECORD_HEADER.size
        self._log_write(valid_offset, b"\x00" * tail_zero)
        payload = body + _RECORD_CRC.pack(zlib.crc32(body) & 0xFFFFFFFF)
        self._fire(
            "tx.log",
            payload_len=len(payload),
            payload_writer=lambda n: self._log_write(
                head, payload[:n], torn=True
            ),
        )
        self._log_write(head, payload)
        # The valid byte is persisted only after the body and checksum.
        self._log_write(valid_offset, b"\x01")
        self._log_head = head + total

    def _log_terminate(self, offset: int) -> None:
        """Zero the next record header (length 0 ends the recovery scan)."""
        if offset + _RECORD_HEADER.size + _RECORD_TRAILER <= self._log_capacity:
            self._log_write(offset, b"\x00" * _RECORD_HEADER.size)

    def _log_rollback(self) -> None:
        """Abort path: replay this transaction's records in reverse."""
        records = []
        offset = _LOG_HEADER_BYTES
        while offset < self._log_head:
            header = self._log_read(offset, _RECORD_HEADER.size)
            addr, length = _RECORD_HEADER.unpack(header)
            old = self._log_read(offset + _RECORD_HEADER.size, length)
            records.append((addr, old))
            offset += _RECORD_HEADER.size + length + _RECORD_TRAILER
        for addr, old in reversed(records):
            try:
                self.controller.write(addr, old)
            except SegmentRetiredError:
                pass  # best-effort restore onto just-retired media

    def _log_finish(self) -> None:
        """Clear the active flag; the log is logically empty."""
        self.controller.write(0, b"\x00")
        self._log_head = _LOG_HEADER_BYTES
        self._tx_active = False

    def _log_write(self, offset: int, data: bytes, torn: bool = False) -> None:
        """Segment-chunked write inside the log region (``torn`` routes
        through the crash-interrupted program path of the controller)."""
        if not data:
            return
        write = (
            self.controller.torn_program if torn else self.controller.write
        )
        seg = self.controller.segment_size
        cursor = 0
        while cursor < len(data):
            room = seg - ((offset + cursor) % seg)
            chunk = data[cursor : cursor + room]
            write(offset + cursor, chunk)
            cursor += len(chunk)

    def _log_read(self, offset: int, length: int) -> bytes:
        """Segment-chunked read inside the log region."""
        seg = self.controller.segment_size
        out = b""
        while len(out) < length:
            room = seg - ((offset + len(out)) % seg)
            take = min(room, length - len(out))
            out += self.controller.read(offset + len(out), take)
        return out

    def _check_object_address(self, addr: int) -> None:
        """Reject addresses that are not object segments of this pool."""
        start = self.object_start_segment * self.segment_size
        end = self.controller.n_segments * self.segment_size
        if addr % self.segment_size:
            raise ValueError(
                f"address {addr} is not segment-aligned "
                f"(segment size {self.segment_size})"
            )
        if not start <= addr < end:
            region = "log" if addr < self.log_segments * self.segment_size \
                else "metadata" if addr < start else "out-of-range"
            raise ValueError(
                f"address {addr} is in the pool's {region} region, not an "
                f"object segment (objects start at {start})"
            )
