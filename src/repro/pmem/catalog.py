"""Persistent per-segment catalog: the media-resident store descriptor.

One fixed-size record per object segment lives in the pool's reserved
metadata region, so the media alone describes the KV store::

    [0]      flags       (bit 0 = valid: the segment holds a live value)
    [1]      reserved    (always 0)
    [2:4]    key length  (u16)
    [4:8]    value length(u32)
    [8:16]   epoch       (u64, monotonically increasing per PUT)
    [16:20]  value CRC32 (u32, checksum of the value bytes)
    [20:..]  key bytes   (zero-padded to ``key_capacity``)

Records never cross a segment boundary (each metadata segment holds
``segment_size // record_size`` of them), so a record update is a single
in-segment write and composes with the pool's undo-log transactions:
``tx_set``/``tx_clear`` make header+value+flag updates failure-atomic.

The validity flag is the paper's Algorithm 2 flag bit made real: DELETE
resets a *persisted* bit, and recovery rebuilds the index, validity map and
Dynamic Address Pool purely from a catalog scan.

The value CRC32 is the store's end-to-end integrity contract: it is written
in the same transaction as the value bytes (so record and value can never
disagree after recovery), verified on every GET and during the recovery
scan, and is what lets the read path *detect* resistance-drift corruption
instead of serving garbage.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.pmem.pool import PersistentPool

# flags, reserved, key_len, value_len, epoch, value_crc32
_RECORD = struct.Struct("<BBHIQI")
_FLAG_VALID = 0x01

#: Default key capacity; records are then 60 B, fitting the 64 B segments
#: used throughout the test/benchmark geometry.
DEFAULT_KEY_CAPACITY = 40


@dataclass(frozen=True)
class CatalogEntry:
    """One decoded live record of the persistent catalog."""

    slot: int
    key: bytes
    value_len: int
    epoch: int
    crc: int = 0


class PersistentCatalog:
    """Fixed-size record table over a pool's reserved metadata region.

    Args:
        pool: the :class:`PersistentPool` whose object segments the catalog
            describes; its ``meta_segments`` must cover one record per
            object segment (size the pool with :meth:`meta_segments_for`).
        key_capacity: maximum key length the records can hold.
    """

    def __init__(
        self, pool: PersistentPool, key_capacity: int = DEFAULT_KEY_CAPACITY
    ) -> None:
        if key_capacity <= 0:
            raise ValueError("key_capacity must be positive")
        self.pool = pool
        self.key_capacity = key_capacity
        self.record_size = _RECORD.size + key_capacity
        if self.record_size > pool.segment_size:
            raise ValueError(
                f"catalog record of {self.record_size} B exceeds the "
                f"{pool.segment_size} B segment; lower key_capacity"
            )
        self.records_per_segment = pool.segment_size // self.record_size
        self.n_slots = pool.capacity_objects
        needed = self.segments_needed(
            self.n_slots, pool.segment_size, key_capacity
        )
        if pool.meta_segments < needed:
            raise ValueError(
                f"pool reserves {pool.meta_segments} metadata segments but "
                f"the catalog needs {needed} for {self.n_slots} objects"
            )

    # ------------------------------------------------------------- geometry

    @staticmethod
    def segments_needed(
        n_objects: int, segment_size: int, key_capacity: int
    ) -> int:
        """Metadata segments required to catalogue ``n_objects`` segments."""
        record = _RECORD.size + key_capacity
        if record > segment_size:
            raise ValueError("record larger than a segment")
        per_segment = segment_size // record
        return -(-n_objects // per_segment)

    @staticmethod
    def meta_segments_for(
        n_segments: int,
        log_segments: int,
        segment_size: int,
        key_capacity: int = DEFAULT_KEY_CAPACITY,
    ) -> int:
        """Solve the circular sizing: metadata segments to reserve on a
        device of ``n_segments`` so every remaining object segment has a
        catalog record."""
        for meta in range(1, n_segments - log_segments):
            objects = n_segments - log_segments - meta
            if (
                PersistentCatalog.segments_needed(
                    objects, segment_size, key_capacity
                )
                <= meta
            ):
                return meta
        raise ValueError("device too small to hold a catalog")

    def record_address(self, slot: int) -> int:
        """Media byte address of the record for object segment ``slot``."""
        if not 0 <= slot < self.n_slots:
            raise IndexError(f"catalog slot {slot} out of range")
        segment, offset = divmod(slot, self.records_per_segment)
        return self.pool.meta_address(segment) + offset * self.record_size

    # ----------------------------------------------------------- mutations

    def format(self) -> None:
        """Zero the whole metadata region (every record invalid).

        Call once when creating a store on fresh media; formatting is a
        plain bulk write, not a transaction.
        """
        zeros = b"\x00" * self.pool.segment_size
        for i in range(self.pool.meta_segments):
            self.pool.write(self.pool.meta_address(i), zeros)

    def tx_set(
        self, tx, slot: int, key: bytes, value_len: int, epoch: int,
        crc: int = 0,
    ) -> None:
        """Transactionally write a full live record for ``slot``.

        ``crc`` is the CRC32 of the value bytes; writing it in the same
        transaction as the value keeps record and value consistent across
        any crash point.
        """
        if len(key) > self.key_capacity:
            raise ValueError(
                f"key of {len(key)} bytes exceeds catalog key capacity "
                f"{self.key_capacity}"
            )
        if not 0 < value_len <= self.pool.segment_size:
            raise ValueError(f"value length {value_len} out of range")
        record = _RECORD.pack(
            _FLAG_VALID, 0, len(key), value_len, epoch, crc & 0xFFFFFFFF
        ) + key.ljust(self.key_capacity, b"\x00")
        tx.write(self.record_address(slot), record)

    def tx_clear(self, tx, slot: int) -> None:
        """Transactionally reset the validity flag of ``slot`` (Algorithm 2:
        one persisted bit; the rest of the record becomes dead metadata)."""
        tx.write(self.record_address(slot), b"\x00")

    def tx_move(
        self, tx, old_slot: int, new_slot: int, key: bytes, value_len: int,
        epoch: int, crc: int = 0,
    ) -> None:
        """Transactionally forward a live record to a new slot — the
        catalog half of a migration (update-in-place PUTs, relocation off
        retiring segments, and the compactor's wear-leveling swaps all
        route through it).

        The full record is written at ``new_slot`` and ``old_slot``'s
        validity flag is reset in the *same* undo-log transaction, so a
        crash mid-move rolls both back together.  The moved record carries
        a fresh ``epoch``: even if a duplicate pair ever survived to a
        recovery scan, newest-epoch-wins resolution keeps exactly the
        forwarded copy — which is what makes migration crash-safe without
        any extra forwarding table on the media.
        """
        self.tx_set(tx, new_slot, key, value_len, epoch, crc=crc)
        self.tx_clear(tx, old_slot)

    # --------------------------------------------------------------- reads

    def read(self, slot: int) -> CatalogEntry | None:
        """Decode the record of ``slot``; ``None`` when invalid or garbage."""
        raw = self.pool.read(self.record_address(slot), self.record_size)
        flags, _, key_len, value_len, epoch, crc = _RECORD.unpack(
            raw[: _RECORD.size]
        )
        if flags != _FLAG_VALID:
            return None
        if key_len == 0 or key_len > self.key_capacity:
            return None
        if value_len == 0 or value_len > self.pool.segment_size:
            return None
        key = raw[_RECORD.size : _RECORD.size + key_len]
        return CatalogEntry(slot=slot, key=key, value_len=value_len,
                            epoch=epoch, crc=crc)

    def scan(self):
        """Yield every live :class:`CatalogEntry`, in slot order."""
        for slot in range(self.n_slots):
            entry = self.read(slot)
            if entry is not None:
                yield entry

    def max_epoch(self) -> int:
        """Highest epoch across live records (0 when the store is empty)."""
        return max((e.epoch for e in self.scan()), default=0)
