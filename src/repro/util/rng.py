"""Deterministic random-number helpers.

Every stochastic component in the reproduction (device init content, workload
generators, model initialisation) accepts either a seed or an existing
``numpy.random.Generator``; this helper normalises both.
"""

from __future__ import annotations

import numpy as np


def rng_from_seed(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``seed``.

    Passing an existing generator returns it unchanged so callers can share a
    stream; passing ``None`` yields a fresh OS-seeded generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
