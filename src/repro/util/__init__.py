"""Shared low-level utilities: bit manipulation and deterministic RNG helpers."""

from repro.util.bits import (
    POPCOUNT_TABLE,
    bits_to_bytes,
    bytes_to_bits,
    hamming_bytes,
    hamming_distance,
    popcount_array,
)
from repro.util.rng import rng_from_seed

__all__ = [
    "POPCOUNT_TABLE",
    "bits_to_bytes",
    "bytes_to_bits",
    "hamming_bytes",
    "hamming_distance",
    "popcount_array",
    "rng_from_seed",
]
