"""Bit-level primitives used throughout the simulator.

All NVM content is modelled as NumPy ``uint8`` arrays.  Counting flipped bits
between an old and a new byte string (the Hamming distance) is the single
hottest operation in the whole reproduction, so it is vectorised with a
256-entry popcount lookup table.
"""

from __future__ import annotations

import numpy as np

#: ``POPCOUNT_TABLE[b]`` is the number of set bits in byte value ``b``.
POPCOUNT_TABLE = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)


def popcount_array(values: np.ndarray) -> int:
    """Return the total number of set bits across a ``uint8`` array."""
    values = np.asarray(values, dtype=np.uint8)
    return int(POPCOUNT_TABLE[values].sum())


def hamming_bytes(a: np.ndarray, b: np.ndarray) -> int:
    """Return the Hamming distance (number of differing bits) between two
    equal-length ``uint8`` arrays."""
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return popcount_array(np.bitwise_xor(a, b))


def hamming_distance(a: bytes, b: bytes) -> int:
    """Return the Hamming distance between two equal-length byte strings."""
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    return hamming_bytes(
        np.frombuffer(a, dtype=np.uint8), np.frombuffer(b, dtype=np.uint8)
    )


def bytes_to_bits(data: bytes | np.ndarray) -> np.ndarray:
    """Expand bytes into a ``float32`` 0/1 bit vector (MSB first).

    The ML models consume bit vectors, one feature per bit, exactly as the
    paper encodes memory segments (§3.2).
    """
    if isinstance(data, (bytes, bytearray, memoryview)):
        data = np.frombuffer(bytes(data), dtype=np.uint8)
    data = np.asarray(data, dtype=np.uint8)
    return np.unpackbits(data).astype(np.float32)


def bits_to_bytes(bits: np.ndarray) -> bytes:
    """Collapse a 0/1 bit vector (MSB first) back into bytes.

    The bit count must be a multiple of 8.  Values are thresholded at 0.5 so
    that model outputs (probabilities) can be passed directly.
    """
    bits = np.asarray(bits)
    if bits.size % 8:
        raise ValueError(f"bit count {bits.size} is not a multiple of 8")
    hard = (bits > 0.5).astype(np.uint8)
    return np.packbits(hard).tobytes()
