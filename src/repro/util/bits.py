"""Bit-level primitives used throughout the simulator.

All NVM content is modelled as NumPy ``uint8`` arrays.  Counting flipped bits
between an old and a new byte string (the Hamming distance) is the single
hottest operation in the whole reproduction.  On NumPy >= 2.0 it uses the
native ``np.bitwise_count`` ufunc; older NumPy falls back to a 256-entry
popcount lookup table.
"""

from __future__ import annotations

import numpy as np

#: ``POPCOUNT_TABLE[b]`` is the number of set bits in byte value ``b``.
POPCOUNT_TABLE = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)

#: Whether the running NumPy provides the native popcount ufunc (>= 2.0).
HAVE_BITWISE_COUNT = hasattr(np, "bitwise_count")


def popcount_array(values: np.ndarray) -> int:
    """Return the total number of set bits across a ``uint8`` array."""
    values = np.asarray(values, dtype=np.uint8)
    if HAVE_BITWISE_COUNT:
        return int(np.bitwise_count(values).sum(dtype=np.int64))
    return int(POPCOUNT_TABLE[values].sum(dtype=np.int64))


def popcount_rows(matrix: np.ndarray) -> np.ndarray:
    """Per-row set-bit counts of a 2-D ``uint8`` array, as ``int64``.

    The batched write path accounts a whole batch of segment writes with one
    call instead of one :func:`popcount_array` per write.
    """
    matrix = np.atleast_2d(np.asarray(matrix, dtype=np.uint8))
    if HAVE_BITWISE_COUNT:
        return np.bitwise_count(matrix).sum(axis=1, dtype=np.int64)
    return POPCOUNT_TABLE[matrix].sum(axis=1, dtype=np.int64)


def hamming_bytes(a: np.ndarray, b: np.ndarray) -> int:
    """Return the Hamming distance (number of differing bits) between two
    equal-length ``uint8`` arrays."""
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return popcount_array(np.bitwise_xor(a, b))


def hamming_distance(a: bytes, b: bytes) -> int:
    """Return the Hamming distance between two equal-length byte strings."""
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    return hamming_bytes(
        np.frombuffer(a, dtype=np.uint8), np.frombuffer(b, dtype=np.uint8)
    )


def bytes_to_bits(data: bytes | np.ndarray) -> np.ndarray:
    """Expand bytes into a ``float32`` 0/1 bit vector (MSB first).

    The ML models consume bit vectors, one feature per bit, exactly as the
    paper encodes memory segments (§3.2).
    """
    if isinstance(data, (bytes, bytearray, memoryview)):
        data = np.frombuffer(bytes(data), dtype=np.uint8)
    data = np.asarray(data, dtype=np.uint8)
    return np.unpackbits(data).astype(np.float32)


def bytes_to_bits_many(values: list[bytes]) -> list[np.ndarray]:
    """Bit-expand many byte strings with a single ``np.unpackbits`` call.

    Returns one ``float32`` 0/1 vector per input value (views into one shared
    expansion, so do not mutate them in place).  Mixed lengths are fine; this
    is the batched front end of :func:`bytes_to_bits`.
    """
    if not values:
        return []
    buffer = np.frombuffer(b"".join(bytes(v) for v in values), dtype=np.uint8)
    bits = np.unpackbits(buffer).astype(np.float32)
    out: list[np.ndarray] = []
    offset = 0
    for value in values:
        n_bits = len(value) * 8
        out.append(bits[offset : offset + n_bits])
        offset += n_bits
    return out


def bits_to_bytes(bits: np.ndarray) -> bytes:
    """Collapse a 0/1 bit vector (MSB first) back into bytes.

    The bit count must be a multiple of 8.  Values are thresholded at 0.5 so
    that model outputs (probabilities) can be passed directly.
    """
    bits = np.asarray(bits)
    if bits.size % 8:
        raise ValueError(f"bit count {bits.size} is not a multiple of 8")
    hard = (bits > 0.5).astype(np.uint8)
    return np.packbits(hard).tobytes()
