"""Offline fsck: clean stores pass, every injected defect is reported."""

import numpy as np
import pytest

from repro.testing import CrashError, FaultInjector, KVCrashHarness
from repro.tools.fsck import fsck, main


@pytest.fixture(scope="module")
def harness():
    return KVCrashHarness(n_segments=48, segment_size=64, seed=7)


def snapshot(harness, tmp_path, mutate=None, faults=None, n_keys=5):
    """Build a store, optionally crash/corrupt it, save a snapshot."""
    faults = faults or FaultInjector()
    device, _, store = harness.fresh(faults)
    rng = np.random.default_rng(5)
    crashed = False
    try:
        for i in range(n_keys):
            store.put(
                b"k%02d" % i,
                rng.integers(0, 256, 48, dtype=np.uint8).tobytes(),
            )
    except CrashError:
        crashed = True
    if mutate is not None:
        mutate(device, store)
    path = tmp_path / "store.npz"
    device.save(path)
    return path, store, crashed


def run_fsck(path, harness):
    return fsck(
        path,
        log_segments=harness.log_segments,
        key_capacity=harness.key_capacity,
    )


class TestVerdicts:
    def test_clean_store_is_clean(self, harness, tmp_path):
        path, store, _ = snapshot(harness, tmp_path)
        report = run_fsck(path, harness)
        assert report.ok, report.errors
        assert not report.warnings
        assert report.values_ok == len(store)
        assert report.pending_undo_records == 0

    def test_flipped_value_bit_is_an_error(self, harness, tmp_path):
        def flip(device, store):
            addr = next(
                a for a, k in store._by_addr.items() if k is not None
            )
            device._content[addr] ^= 0x01

        path, _, _ = snapshot(harness, tmp_path, mutate=flip)
        report = run_fsck(path, harness)
        assert not report.ok
        assert any("CRC32" in e for e in report.errors)

    def test_duplicate_live_key_is_an_error(self, harness, tmp_path):
        def duplicate(device, store):
            entries = list(store.catalog.scan())
            src, dst = entries[0], entries[1]
            src_addr = store.catalog.record_address(src.slot)
            dst_addr = store.catalog.record_address(dst.slot)
            record = store.pool.read(src_addr, store.catalog.record_size)
            # Clone slot 0's record over slot 1's — two live records now
            # claim the same key (and slot 1's value fails the cloned CRC).
            device._content[
                dst_addr : dst_addr + store.catalog.record_size
            ] = np.frombuffer(record, dtype=np.uint8)

        path, _, _ = snapshot(harness, tmp_path, mutate=duplicate)
        report = run_fsck(path, harness)
        assert not report.ok
        assert any("duplicate live key" in e for e in report.errors)

    def test_crashed_transaction_is_a_warning_not_error(
        self, harness, tmp_path
    ):
        faults = FaultInjector()
        faults.arm("tx.commit", error=CrashError, after=2, times=1)
        path, _, crashed = snapshot(harness, tmp_path, faults=faults)
        assert crashed
        report = run_fsck(path, harness)
        assert report.ok, report.errors  # recovery will roll it back
        assert any("active" in w for w in report.warnings)
        assert report.pending_undo_records > 0

    def test_garbage_active_flag_is_an_error(self, harness, tmp_path):
        def garbage(device, store):
            device._content[0] = 0x7F

        path, _, _ = snapshot(harness, tmp_path, mutate=garbage)
        report = run_fsck(path, harness)
        assert not report.ok
        assert any("active flag" in e for e in report.errors)


class TestCli:
    def test_exit_codes(self, harness, tmp_path, capsys):
        path, store, _ = snapshot(harness, tmp_path)
        argv = [
            str(path),
            "--log-segments", str(harness.log_segments),
            "--key-capacity", str(harness.key_capacity),
        ]
        assert main(argv) == 0
        assert "clean" in capsys.readouterr().out

        # Corrupt one live byte and re-save under a new name.
        from repro.nvm import NVMDevice

        live_addr = next(
            a for a, k in store._by_addr.items() if k is not None
        )
        bad = NVMDevice.load(path)
        bad._content[live_addr] ^= 0xFF
        bad_path = tmp_path / "bad.npz"
        bad.save(bad_path)
        argv[0] = str(bad_path)
        assert main(argv) == 1
        assert "ERROR" in capsys.readouterr().out
