"""Shared fixtures: small devices and a pre-trained engine.

The trained engine is session-scoped because VAE training, even tiny, is the
dominant cost; tests that mutate engine state build their own.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import E2NVM, KVStore
from repro.core.config import fast_test_config
from repro.nvm import MemoryController, NVMDevice


SEGMENT_SIZE = 64
N_SEGMENTS = 128


def make_device(seed: int = 7, segment_size: int = SEGMENT_SIZE,
                n_segments: int = N_SEGMENTS, **kwargs) -> NVMDevice:
    """A small random-content device for tests."""
    return NVMDevice(
        capacity_bytes=n_segments * segment_size,
        segment_size=segment_size,
        initial_fill="random",
        seed=seed,
        **kwargs,
    )


def make_engine(
    seed: int = 7,
    n_segments: int = N_SEGMENTS,
    segment_size: int = SEGMENT_SIZE,
    **config_overrides,
) -> E2NVM:
    """A freshly trained small engine over its own device."""
    device = make_device(
        seed=seed, segment_size=segment_size, n_segments=n_segments
    )
    controller = MemoryController(device)
    engine = E2NVM(controller, fast_test_config(**config_overrides))
    engine.train()
    return engine


@pytest.fixture
def device() -> NVMDevice:
    return make_device()


@pytest.fixture
def controller(device) -> MemoryController:
    return MemoryController(device)


@pytest.fixture(scope="session")
def trained_engine() -> E2NVM:
    """Read-mostly trained engine; do NOT mutate its pool in tests."""
    return make_engine()


@pytest.fixture
def fresh_engine() -> E2NVM:
    """A trained engine safe to mutate."""
    return make_engine(seed=11)


@pytest.fixture
def kvstore(fresh_engine) -> KVStore:
    return KVStore(fresh_engine)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
