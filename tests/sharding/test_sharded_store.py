"""Sharded facade semantics on the in-process backend (tier-1 safe).

The in-process backend defines the sharded store's behaviour; the process
backend must only change *where* shards execute.  These tests pin the
behaviour: a one-shard store is byte-for-byte the plain ``KVStore``, batch
ops scatter results back to input order, the manifest reopens to identical
routing, and telemetry aggregates with counter-correct semantics.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.config import fast_test_config
from repro.core.e2nvm import E2NVM
from repro.core.kvstore import KVStore
from repro.nvm.controller import MemoryController
from repro.nvm.device import NVMDevice
from repro.pmem.catalog import PersistentCatalog
from repro.pmem.pool import PersistentPool
from repro.sharding import ShardedKVStore
from repro.sharding.store import MANIFEST_NAME, aggregate_telemetry

SEGMENT_SIZE = 64
N_SEGMENTS = 96
SEED = 7


def _config():
    return fast_test_config()


def _trace(n: int, seed: int = 13):
    rng = np.random.default_rng(seed)
    items = []
    for i in range(n):
        length = int(rng.integers(8, SEGMENT_SIZE - 16))
        items.append(
            (b"key-%04d" % i, rng.integers(0, 256, length, dtype=np.uint8).tobytes())
        )
    return items


def _plain_volatile_twin():
    """A plain KVStore built exactly as Shard.build builds a volatile
    one-shard slice (same seeds, same construction order)."""
    device = NVMDevice(
        capacity_bytes=N_SEGMENTS * SEGMENT_SIZE,
        segment_size=SEGMENT_SIZE,
        initial_fill="random",
        seed=SEED,
    )
    engine = E2NVM(MemoryController(device), _config())
    engine.train()
    return KVStore(engine), device


class TestSingleShardEquivalence:
    def test_volatile_twin_byte_for_byte(self):
        sharded = ShardedKVStore.create_volatile(
            1,
            segment_size=SEGMENT_SIZE,
            n_segments_per_shard=N_SEGMENTS,
            config=_config(),
            base_seed=SEED,
        )
        plain, plain_device = _plain_volatile_twin()
        items = _trace(40)

        # Same mixed trace against both: batch, point, overwrite, delete.
        batch, rest = items[:24], items[24:]
        assert sharded.put_many(batch) == plain.put_many(batch)
        for key, value in rest:
            assert sharded.put(key, value) == plain.put(key, value)
        for i in (0, 5, 11):
            key, _ = items[i]
            new = b"v2-" + bytes([i]) * 20
            assert sharded.put(key, new) == plain.put(key, new)
        for i in (3, 17):
            key, _ = items[i]
            assert sharded.delete(key) is plain.delete(key)

        assert len(sharded) == len(plain)
        assert sharded.keys() == sorted(plain.keys())
        for key, _ in items:
            assert sharded.get(key) == plain.get(key)

        shard_device = sharded.backend.shard(0).device
        np.testing.assert_array_equal(
            shard_device._content, plain_device._content
        )
        sharded.close()

    def test_durable_twin_byte_for_byte(self, tmp_path):
        sharded = ShardedKVStore.create(
            tmp_path / "store",
            1,
            segment_size=SEGMENT_SIZE,
            n_segments_per_shard=N_SEGMENTS,
            config=_config(),
            base_seed=SEED,
            log_segments=4,
            key_capacity=16,
        )
        device = NVMDevice(
            capacity_bytes=N_SEGMENTS * SEGMENT_SIZE,
            segment_size=SEGMENT_SIZE,
            initial_fill="random",
            seed=SEED,
        )
        pool = PersistentPool(
            MemoryController(device),
            log_segments=4,
            meta_segments=PersistentCatalog.meta_segments_for(
                N_SEGMENTS, 4, SEGMENT_SIZE, 16
            ),
        )
        plain = KVStore.create(pool, config=_config(), key_capacity=16)

        items = _trace(20)
        assert sharded.put_many(items[:12]) == plain.put_many(items[:12])
        for key, value in items[12:]:
            assert sharded.put(key, value) == plain.put(key, value)
        key, _ = items[2]
        assert sharded.delete(key) is plain.delete(key)

        shard_device = sharded.backend.shard(0).device
        np.testing.assert_array_equal(
            shard_device._content, device._content
        )
        sharded.close()


class TestFacadeOps:
    @pytest.fixture
    def store(self):
        store = ShardedKVStore.create_volatile(
            3,
            segment_size=SEGMENT_SIZE,
            n_segments_per_shard=N_SEGMENTS,
            config=_config(),
        )
        yield store
        store.close()

    def test_put_many_scatters_to_input_order(self, store):
        items = _trace(30)
        addrs = store.put_many(items)
        assert len(addrs) == len(items)
        assert all(a is not None for a in addrs)
        # get_many returns values in input order, across shards.
        keys = [k for k, _ in items]
        assert store.get_many(keys) == [v for _, v in items]
        # Keys really spread over more than one shard.
        owners = {store.shard_of(k) for k in keys}
        assert len(owners) > 1

    def test_routing_is_stable_per_key(self, store):
        items = _trace(12)
        store.put_many(items)
        for key, value in items:
            assert store.get(key) == value
            new = value[::-1] or b"x"
            store.put(key, new)
            assert store.get(key) == new
        assert len(store) == len(items)

    def test_delete_and_contains(self, store):
        items = _trace(10)
        store.put_many(items)
        key = items[4][0]
        assert key in store
        assert store.delete(key) is True
        assert store.delete(key) is False
        assert key not in store
        assert len(store) == len(items) - 1

    def test_retrain_broadcasts_per_shard(self, store):
        epochs_before = store.model_epochs()
        started = store.retrain()
        assert started == [True] * store.n_shards
        assert store.wait_for_retrain(30.0) == [True] * store.n_shards
        epochs_after = store.model_epochs()
        assert all(
            after == before + 1
            for before, after in zip(epochs_before, epochs_after)
        )


class TestManifest:
    def test_create_close_open_round_trip(self, tmp_path):
        root = tmp_path / "store"
        store = ShardedKVStore.create(
            root,
            2,
            segment_size=SEGMENT_SIZE,
            n_segments_per_shard=N_SEGMENTS,
            config=_config(),
            log_segments=4,
            key_capacity=16,
            ring_seed=42,
        )
        items = _trace(16)
        store.put_many(items)
        store.close()

        manifest = json.loads((root / MANIFEST_NAME).read_text())
        assert manifest["ring"] == {"n_shards": 2, "seed": 42, "vnodes": 128}
        assert len(manifest["shards"]) == 2
        assert all((root / f"shard-{i}.npz").exists() for i in range(2))

        reopened = ShardedKVStore.open(root, config=_config())
        assert reopened.ring.describe() == store.ring.describe()
        for key, value in items:
            assert reopened.get(key) == value
        reports = reopened.recovery_reports()
        assert len(reports) == 2
        assert all(r is not None for r in reports)
        reopened.close()

    def test_open_missing_manifest_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ShardedKVStore.open(tmp_path / "nope")


def _shard_telemetry(
    shard_id,
    *,
    count,
    seconds,
    hits=0,
    served=0,
    agreement=1.0,
    writes=0,
    max_wear=0,
    total_wear=0,
    read_only=False,
):
    return {
        "shard_id": shard_id,
        "n_keys": 10,
        "read_only": read_only,
        "placement": {
            "cache_hits": hits,
            "cache_misses": 1,
            "cache_evictions": 0,
            "cache_invalidations": 0,
            "cache_entries": 2,
            "cache_capacity": 64,
            "student_served": served,
            "student_deferred": 0,
            "teacher_served": 1,
            "student_trained": True,
            "student_train_agreement": agreement,
            "student_low_agreement": False,
        },
        "prediction_count": count,
        "prediction_seconds": seconds,
        "retrain": {"started": 1, "succeeded": 1, "failed": 0, "deferred": 0},
        "model_epoch": 1,
        "device": {
            "writes": writes,
            "reads": 0,
            "bits_programmed": 8 * writes,
            "bits_flipped": writes,
            "write_energy_pj": 2.0 * writes,
            "read_energy_pj": 0.0,
            "write_latency_ns": 150.0 * writes,
            "read_latency_ns": 0.0,
        },
        "wear": {
            "max_segment_writes": max_wear,
            "total_segment_writes": total_wear,
        },
    }


class TestTelemetryAggregation:
    def test_latency_is_weighted_by_count_not_averaged(self):
        # Shard 0: 3 predictions at 1 us.  Shard 1: 30000 at 100 us.  The
        # naive average of means would say ~50 us; the fleet really runs
        # at ~100 us.
        rollup = aggregate_telemetry(
            [
                _shard_telemetry(0, count=3, seconds=3e-6),
                _shard_telemetry(1, count=30_000, seconds=3.0),
            ]
        )
        assert rollup["prediction_count"] == 30_003
        assert rollup["mean_prediction_latency_us"] == pytest.approx(
            3.000003 / 30_003 * 1e6
        )
        assert rollup["mean_prediction_latency_us"] > 99.0

    def test_counters_sum_and_extrema(self):
        rollup = aggregate_telemetry(
            [
                _shard_telemetry(
                    0, count=1, seconds=1e-6, hits=10, served=5,
                    agreement=0.9, writes=100, max_wear=7, total_wear=40,
                ),
                _shard_telemetry(
                    1, count=1, seconds=1e-6, hits=20, served=2,
                    agreement=0.6, writes=50, max_wear=12, total_wear=30,
                    read_only=True,
                ),
            ]
        )
        assert rollup["placement"]["cache_hits"] == 30
        assert rollup["placement"]["student_served"] == 7
        assert rollup["placement"]["student_train_agreement"] == 0.6  # min
        assert rollup["device"]["writes"] == 150
        assert rollup["device"]["write_energy_pj"] == pytest.approx(300.0)
        assert rollup["wear"]["max_segment_writes"] == 12  # max, not sum
        assert rollup["wear"]["total_segment_writes"] == 70
        assert rollup["retrain"]["started"] == 2
        assert rollup["read_only_shards"] == [1]
        assert rollup["n_keys"] == 20
        assert rollup["n_shards"] == 2

    def test_zero_predictions_do_not_divide_by_zero(self):
        rollup = aggregate_telemetry(
            [_shard_telemetry(0, count=0, seconds=0.0)]
        )
        assert rollup["mean_prediction_latency_us"] == 0.0

    def test_live_two_shard_rollup_matches_per_shard_sums(self):
        store = ShardedKVStore.create_volatile(
            2,
            segment_size=SEGMENT_SIZE,
            n_segments_per_shard=N_SEGMENTS,
            config=_config(),
        )
        store.put_many(_trace(24))
        rollup = store.telemetry()
        per_shard = rollup["shards"]
        assert rollup["prediction_count"] == sum(
            t["prediction_count"] for t in per_shard
        )
        assert rollup["placement"]["cache_misses"] == sum(
            t["placement"]["cache_misses"] for t in per_shard
        )
        assert rollup["n_keys"] == 24
        placement = store.placement_telemetry()
        assert placement["cache_misses"] == rollup["placement"]["cache_misses"]
        assert "mean_prediction_latency_us" in placement
        store.close()
