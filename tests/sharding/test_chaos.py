"""Chaos drill acceptance tests (marker: ``chaos``).

The drill itself lives in :mod:`repro.testing.chaos`; these tests pin
its contract for CI: random kill / SIGSTOP / in-transaction-crash faults
landing mid-``put_many`` while wearout and drift clocks advance, and the
fleet must converge back to all-shards-healthy with zero lost
acknowledged writes and a clean fsck on every shard.  Seeded — a failure
reproduces from its seed.
"""

from __future__ import annotations

import pytest

from repro.testing.chaos import FAULT_KINDS, run_chaos_drill

pytestmark = pytest.mark.chaos


class TestChaosDrill:
    def test_drill_converges_with_no_lost_acked_writes(self, tmp_path):
        report = run_chaos_drill(
            tmp_path / "drill",
            rounds=5,
            batch_size=16,
            seed=0,
            heal_timeout_s=120.0,
        )
        assert report.all_healthy, "fleet did not converge to healthy"
        assert report.lost_writes == [], report.lost_writes
        assert report.corrupt_keys == [], report.corrupt_keys
        assert report.fsck_ok, report.fsck_errors
        assert report.ok
        # The drill must actually have hurt something, or it proves nothing.
        assert sum(report.faults.values()) == 5
        assert report.restarts >= 1
        assert report.total_items > 0
        assert 0.0 < report.availability <= 1.0

    def test_drill_is_seeded_and_reports_recoveries(self, tmp_path):
        report = run_chaos_drill(
            tmp_path / "drill",
            rounds=4,
            batch_size=12,
            seed=3,
            heal_timeout_s=120.0,
        )
        assert report.ok
        assert set(report.faults) == set(FAULT_KINDS)
        if report.recovery_count:
            assert report.recovery_time_mean_s > 0.0
            assert (
                report.recovery_time_max_s >= report.recovery_time_mean_s
            )

    def test_watchdog_species_only(self, tmp_path):
        """A stop-only drill exercises the heartbeat watchdog end to end:
        every fault is a SIGSTOP, so every recovery went detect → kill →
        reopen."""
        report = run_chaos_drill(
            tmp_path / "drill",
            rounds=3,
            batch_size=12,
            seed=1,
            faults=("stop",),
            heal_timeout_s=120.0,
        )
        assert report.ok
        assert report.faults == {"stop": 3}
        assert report.watchdog_kills >= 1

    def test_rejects_unknown_fault_kind(self, tmp_path):
        with pytest.raises(ValueError, match="unknown fault kind"):
            run_chaos_drill(tmp_path / "drill", faults=("meteor",))
