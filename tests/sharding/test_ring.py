"""Consistent-hash ring: stability, determinism, balance.

The ring is the routing contract of the sharded store: the facade in the
parent and any tooling in any other process must agree on every key's
owner, forever, from nothing but ``(n_shards, seed, vnodes)``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sharding import HashRing

keys = st.binary(min_size=0, max_size=64)


class TestRouting:
    @given(key=keys, n_shards=st.integers(1, 16), seed=st.integers(0, 2**32))
    @settings(max_examples=200, deadline=None)
    def test_same_key_same_shard(self, key, n_shards, seed):
        ring = HashRing(n_shards, seed=seed, vnodes=16)
        first = ring.shard_of(key)
        assert 0 <= first < n_shards
        assert ring.shard_of(key) == first

    @given(key=keys, n_shards=st.integers(1, 16), seed=st.integers(0, 2**32))
    @settings(max_examples=200, deadline=None)
    def test_deterministic_across_instances(self, key, n_shards, seed):
        # Two independently built rings (fresh point tables) must agree —
        # this is what lets any process rebuild routing from the manifest.
        a = HashRing(n_shards, seed=seed, vnodes=16)
        b = HashRing(n_shards, seed=seed, vnodes=16)
        assert a.shard_of(key) == b.shard_of(key)

    @given(st.lists(keys, max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_partition_matches_shard_of_and_preserves_order(self, key_list):
        ring = HashRing(4, seed=3, vnodes=32)
        groups = ring.partition(key_list)
        seen = sorted(i for idxs in groups.values() for i in idxs)
        assert seen == list(range(len(key_list)))
        for shard, idxs in groups.items():
            assert idxs == sorted(idxs)  # input order within each group
            for i in idxs:
                assert ring.shard_of(key_list[i]) == shard

    def test_single_shard_takes_everything(self):
        ring = HashRing(1, seed=9)
        assert all(
            ring.shard_of(b"key-%d" % i) == 0 for i in range(100)
        )


class TestBalance:
    def test_near_uniform_distribution(self):
        # Deterministic (fixed seeds) rather than hypothesis-driven: balance
        # is a statistical property and random seeds would make it flaky.
        rng = np.random.default_rng(5)
        sample = [rng.bytes(16) for _ in range(8000)]
        for seed in (0, 1, 17):
            ring = HashRing(4, seed=seed, vnodes=128)
            counts = np.zeros(4, dtype=np.int64)
            for key in sample:
                counts[ring.shard_of(key)] += 1
            share = counts / counts.sum()
            # Every shard within 2x of fair share on both sides.
            assert share.min() > 0.125, (seed, share)
            assert share.max() < 0.5, (seed, share)

    def test_more_vnodes_do_not_break_coverage(self):
        ring = HashRing(8, seed=2, vnodes=256)
        owners = {ring.shard_of(b"k%05d" % i) for i in range(4000)}
        assert owners == set(range(8))


class TestConstruction:
    def test_describe_round_trip(self):
        ring = HashRing(5, seed=11, vnodes=64)
        twin = HashRing(**ring.describe())
        for i in range(200):
            key = b"rt-%d" % i
            assert ring.shard_of(key) == twin.shard_of(key)

    def test_validation(self):
        with pytest.raises(ValueError):
            HashRing(0)
        with pytest.raises(ValueError):
            HashRing(2, vnodes=0)
        with pytest.raises(ValueError):
            HashRing(2, seed=-1)
        with pytest.raises(TypeError):
            HashRing(2).shard_of("not-bytes")

    def test_seed_changes_routing(self):
        a = HashRing(4, seed=0)
        b = HashRing(4, seed=1)
        sample = [b"s-%d" % i for i in range(500)]
        assert any(a.shard_of(k) != b.shard_of(k) for k in sample)
