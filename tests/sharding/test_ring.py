"""Consistent-hash ring: stability, determinism, balance.

The ring is the routing contract of the sharded store: the facade in the
parent and any tooling in any other process must agree on every key's
owner, forever, from nothing but ``(n_shards, seed, vnodes)``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sharding import HashRing

keys = st.binary(min_size=0, max_size=64)


class TestRouting:
    @given(key=keys, n_shards=st.integers(1, 16), seed=st.integers(0, 2**32))
    @settings(max_examples=200, deadline=None)
    def test_same_key_same_shard(self, key, n_shards, seed):
        ring = HashRing(n_shards, seed=seed, vnodes=16)
        first = ring.shard_of(key)
        assert 0 <= first < n_shards
        assert ring.shard_of(key) == first

    @given(key=keys, n_shards=st.integers(1, 16), seed=st.integers(0, 2**32))
    @settings(max_examples=200, deadline=None)
    def test_deterministic_across_instances(self, key, n_shards, seed):
        # Two independently built rings (fresh point tables) must agree —
        # this is what lets any process rebuild routing from the manifest.
        a = HashRing(n_shards, seed=seed, vnodes=16)
        b = HashRing(n_shards, seed=seed, vnodes=16)
        assert a.shard_of(key) == b.shard_of(key)

    @given(st.lists(keys, max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_partition_matches_shard_of_and_preserves_order(self, key_list):
        ring = HashRing(4, seed=3, vnodes=32)
        groups = ring.partition(key_list)
        seen = sorted(i for idxs in groups.values() for i in idxs)
        assert seen == list(range(len(key_list)))
        for shard, idxs in groups.items():
            assert idxs == sorted(idxs)  # input order within each group
            for i in idxs:
                assert ring.shard_of(key_list[i]) == shard

    def test_single_shard_takes_everything(self):
        ring = HashRing(1, seed=9)
        assert all(
            ring.shard_of(b"key-%d" % i) == 0 for i in range(100)
        )


class TestBalance:
    def test_near_uniform_distribution(self):
        # Deterministic (fixed seeds) rather than hypothesis-driven: balance
        # is a statistical property and random seeds would make it flaky.
        rng = np.random.default_rng(5)
        sample = [rng.bytes(16) for _ in range(8000)]
        for seed in (0, 1, 17):
            ring = HashRing(4, seed=seed, vnodes=128)
            counts = np.zeros(4, dtype=np.int64)
            for key in sample:
                counts[ring.shard_of(key)] += 1
            share = counts / counts.sum()
            # Every shard within 2x of fair share on both sides.
            assert share.min() > 0.125, (seed, share)
            assert share.max() < 0.5, (seed, share)

    def test_more_vnodes_do_not_break_coverage(self):
        ring = HashRing(8, seed=2, vnodes=256)
        owners = {ring.shard_of(b"k%05d" % i) for i in range(4000)}
        assert owners == set(range(8))


class TestConstruction:
    def test_describe_round_trip(self):
        ring = HashRing(5, seed=11, vnodes=64)
        twin = HashRing(**ring.describe())
        for i in range(200):
            key = b"rt-%d" % i
            assert ring.shard_of(key) == twin.shard_of(key)

    def test_validation(self):
        with pytest.raises(ValueError):
            HashRing(0)
        with pytest.raises(ValueError):
            HashRing(2, vnodes=0)
        with pytest.raises(ValueError):
            HashRing(2, seed=-1)
        with pytest.raises(TypeError):
            HashRing(2).shard_of("not-bytes")

    def test_seed_changes_routing(self):
        a = HashRing(4, seed=0)
        b = HashRing(4, seed=1)
        sample = [b"s-%d" % i for i in range(500)]
        assert any(a.shard_of(k) != b.shard_of(k) for k in sample)


class TestWeights:
    def test_weight_skews_key_share(self):
        rng = np.random.default_rng(3)
        sample = [rng.bytes(16) for _ in range(8000)]
        ring = HashRing(3, seed=5, vnodes=64, weights=(2.0, 1.0, 1.0))
        counts = np.zeros(3, dtype=np.int64)
        for key in sample:
            counts[ring.shard_of(key)] += 1
        share = counts / counts.sum()
        # Shard 0 holds twice the weight: clearly above fair share, and
        # above both unit-weight shards.
        assert share[0] > 0.4, share
        assert share[0] > share[1] and share[0] > share[2], share

    def test_uniform_weights_identical_to_unweighted(self):
        plain = HashRing(4, seed=9, vnodes=32)
        weighted = HashRing(4, seed=9, vnodes=32, weights=(1.0, 1.0, 1.0, 1.0))
        assert plain._hashes == weighted._hashes
        assert plain._owners == weighted._owners
        # ...and the manifest shape of an unweighted ring is unchanged.
        assert plain.describe() == {"n_shards": 4, "seed": 9, "vnodes": 32}
        assert weighted.describe() == plain.describe()

    def test_describe_round_trip_with_weights(self):
        ring = HashRing(3, seed=11, vnodes=48, weights=(1.5, 1.0, 0.25))
        assert ring.describe()["weights"] == [1.5, 1.0, 0.25]
        twin = HashRing(**ring.describe())
        for i in range(300):
            key = b"wrt-%d" % i
            assert ring.shard_of(key) == twin.shard_of(key)

    def test_growing_a_weight_only_adds_points(self):
        base = HashRing(3, seed=2, vnodes=32)
        grown = base.with_weights((2.0, 1.0, 1.0))
        assert set(base._hashes) <= set(grown._hashes)

    def test_weight_validation(self):
        with pytest.raises(ValueError):
            HashRing(2, weights=(1.0,))
        with pytest.raises(ValueError):
            HashRing(2, weights=(1.0, 0.0))
        with pytest.raises(ValueError):
            HashRing(2, weights=(1.0, -2.0))
        with pytest.raises(ValueError):
            HashRing(2, weights=(1.0, float("inf")))


class TestDiff:
    def test_diff_requires_same_seed(self):
        with pytest.raises(ValueError):
            HashRing.diff(HashRing(2, seed=0), HashRing(2, seed=1))

    def test_identical_rings_empty_diff(self):
        a = HashRing(4, seed=3, vnodes=32)
        diff = HashRing.diff(a, HashRing(4, seed=3, vnodes=32))
        assert not diff
        assert diff.moved_fraction == 0.0

    def test_covers_matches_owner_change_exactly(self):
        old = HashRing(4, seed=7, vnodes=32)
        new = old.with_weights((2.0, 1.0, 0.5, 1.0))
        diff = HashRing.diff(old, new)
        rng = np.random.default_rng(11)
        for _ in range(3000):
            key = rng.bytes(12)
            moved = old.shard_of(key) != new.shard_of(key)
            assert diff.covers(key) == moved, key
        # Arc metadata agrees with the rings on both endpoints' owners.
        for arc in diff.arcs:
            assert old._owner_at(arc.hi) == arc.source
            assert new._owner_at(arc.hi) == arc.target

    @given(
        seed=st.integers(0, 2**32),
        deltas=st.lists(
            st.floats(-0.4, 0.4, allow_nan=False), min_size=3, max_size=3
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_perturbation_diff_is_exact(self, seed, deltas):
        old = HashRing(3, seed=seed, vnodes=24)
        new = old.with_weights(tuple(1.0 + d for d in deltas))
        diff = HashRing.diff(old, new)
        for i in range(400):
            key = b"hp-%d" % i
            moved = old.shard_of(key) != new.shard_of(key)
            assert diff.covers(key) == moved

    @given(seed=st.integers(0, 2**32), eps=st.floats(0.05, 0.5))
    @settings(max_examples=40, deadline=None)
    def test_moved_fraction_shrinks_with_perturbation(self, seed, eps):
        """A smaller weight change moves no more of the hash space: vnode
        counts round, so shrinking the perturbation can only remove ring
        points from the delta."""
        old = HashRing(3, seed=seed, vnodes=24)
        big = HashRing.diff(old, old.with_weights((1.0 + eps, 1.0, 1.0)))
        small = HashRing.diff(
            old, old.with_weights((1.0 + eps / 2, 1.0, 1.0))
        )
        assert small.moved_fraction <= big.moved_fraction

    def test_wrap_arc_covers_the_ring_top(self):
        from repro.sharding import MovedArc

        arc = MovedArc(lo=2**64 - 10, hi=10, source=0, target=1)
        assert arc.wraps
        assert arc.span == 20
        assert arc.covers_hash(2**64 - 5)
        assert arc.covers_hash(5)
        assert not arc.covers_hash(2**63)
