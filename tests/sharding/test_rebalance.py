"""Crash-safe online rebalancing: journal, dual routing, drain, recovery.

Fast in-process coverage of the rebalance protocol; the process-backend
SIGKILL storm and the exhaustive crash sweep live in
``test_rebalance_faults.py`` (marker ``rebalance``).
"""

from __future__ import annotations

import pytest

from repro.core.config import fast_test_config
from repro.sharding import (
    HashRing,
    RebalanceError,
    RebalanceInProgressError,
    RebalanceJournal,
    ShardedKVStore,
)
from repro.tools.fsck import fsck_sharded

WEIGHTS = (2.0, 1.0, 0.5)


def _create(root, **overrides):
    params = dict(
        segment_size=64,
        n_segments_per_shard=256,
        config=fast_test_config(),
        log_segments=4,
        key_capacity=16,
        ring_seed=11,
        vnodes=16,
        base_seed=7,
    )
    params.update(overrides)
    return ShardedKVStore.create(root, 3, **params)


def _preload(store, n=60):
    oracle = {}
    for i in range(n):
        key = b"key-%03d" % i
        value = b"value-%03d" % i
        store.put(key, value)
        oracle[key] = value
    return oracle


def _assert_exactly_once(store, oracle):
    for key, value in oracle.items():
        owner = store.shard_of(key)
        for shard_id in range(store.n_shards):
            got = store.backend.call(shard_id, "get", (key,))
            if shard_id == owner:
                assert got == value, (key, shard_id)
            else:
                assert got is None, (key, shard_id, "duplicate")


class TestLifecycle:
    def test_plan_drain_finalize(self, tmp_path):
        store = _create(tmp_path / "store")
        oracle = _preload(store)
        rebalancer = store.begin_rebalance(weights=WEIGHTS, batch_size=16)
        assert rebalancer.state == "draining"
        assert store.rebalance_active
        assert (tmp_path / "store" / "rebalance.json").exists()
        rebalancer.drain_until_done(timeout_s=30.0)
        rebalancer.finalize()
        assert not store.rebalance_active
        assert RebalanceJournal.load(tmp_path / "store") is None
        assert store.ring.weights == WEIGHTS
        _assert_exactly_once(store, oracle)
        store.close()

    def test_drain_moves_exactly_the_diff(self, tmp_path):
        store = _create(tmp_path / "store")
        oracle = _preload(store)
        old_ring = store.ring
        rebalancer = store.begin_rebalance(weights=WEIGHTS)
        expected = {
            key
            for key in oracle
            if old_ring.shard_of(key) != rebalancer.new_ring.shard_of(key)
        }
        assert {
            key for key in oracle if rebalancer.diff.covers(key)
        } == expected
        rebalancer.drain_until_done(timeout_s=30.0)
        rebalancer.finalize()
        assert rebalancer.keys_copied == len(expected)
        store.close()

    def test_finalize_refuses_undrained(self, tmp_path):
        store = _create(tmp_path / "store")
        _preload(store)
        rebalancer = store.begin_rebalance(weights=WEIGHTS)
        with pytest.raises(RebalanceError, match="await migration"):
            rebalancer.finalize()
        store.close()

    def test_noop_and_concurrent_rejected(self, tmp_path):
        store = _create(tmp_path / "store")
        with pytest.raises(RebalanceError, match="identically"):
            store.begin_rebalance(weights=(1.0, 1.0, 1.0))
        store.begin_rebalance(weights=WEIGHTS)
        with pytest.raises(RebalanceInProgressError):
            store.begin_rebalance(weights=(1.0, 2.0, 1.0))
        store.close()

    def test_volatile_store_cannot_rebalance(self):
        store = ShardedKVStore.create_volatile(
            2, config=fast_test_config(), base_seed=7
        )
        with pytest.raises(RebalanceError, match="volatile"):
            store.begin_rebalance(weights=(2.0, 1.0))
        store.close()

    def test_journal_never_moves_backwards(self, tmp_path):
        journal = RebalanceJournal(
            root=tmp_path,
            old_ring={"n_shards": 2, "seed": 0, "vnodes": 8},
            new_ring={"n_shards": 2, "seed": 0, "vnodes": 16},
        )
        journal.write()
        journal.advance("draining")
        loaded = RebalanceJournal.load(tmp_path)
        assert loaded.state == "draining"
        with pytest.raises(RebalanceError, match="backwards"):
            loaded.advance("planned")


class TestDualRouting:
    def test_reads_fall_back_to_old_owner_mid_drain(self, tmp_path):
        store = _create(tmp_path / "store")
        oracle = _preload(store)
        store.begin_rebalance(weights=WEIGHTS)
        # Nothing drained yet: every moved key still sits on its old
        # owner only, yet every key must read back, point and batch.
        for key, value in oracle.items():
            assert store.get(key) == value
        keys = sorted(oracle)
        assert list(store.get_many(keys)) == [oracle[k] for k in keys]
        assert len(store.keys()) == len(oracle)
        assert len(store) == len(oracle)
        store.close()

    def test_foreground_write_beats_stale_copy(self, tmp_path):
        store = _create(tmp_path / "store")
        oracle = _preload(store)
        rebalancer = store.begin_rebalance(weights=WEIGHTS)
        moved = sorted(k for k in oracle if rebalancer.diff.covers(k))
        assert moved, "perturbation moved nothing; pick other weights"
        # Overwrite a moving key before its batch drains: the write goes
        # to the new owner; the later drain copy must not clobber it.
        victim = moved[0]
        store.put(victim, b"FRESH")
        oracle[victim] = b"FRESH"
        rebalancer.drain_until_done(timeout_s=30.0)
        rebalancer.finalize()
        assert rebalancer.copies_skipped >= 1
        assert store.get(victim) == b"FRESH"
        _assert_exactly_once(store, oracle)
        store.close()

    def test_delete_hits_both_owners(self, tmp_path):
        store = _create(tmp_path / "store")
        oracle = _preload(store)
        rebalancer = store.begin_rebalance(weights=WEIGHTS)
        moved = sorted(k for k in oracle if rebalancer.diff.covers(k))
        victim = moved[0]
        assert store.delete(victim)
        del oracle[victim]
        assert store.get(victim) is None
        rebalancer.drain_until_done(timeout_s=30.0)
        rebalancer.finalize()
        assert store.get(victim) is None, "drain resurrected a deleted key"
        _assert_exactly_once(store, oracle)
        store.close()


class TestRecovery:
    def test_reopen_resumes_draining(self, tmp_path):
        root = tmp_path / "store"
        store = _create(root)
        oracle = _preload(store)
        rebalancer = store.begin_rebalance(weights=WEIGHTS, batch_size=4)
        rebalancer.drain()  # partial progress only
        store.close()
        reopened = ShardedKVStore.open(root, config=fast_test_config())
        assert reopened.rebalance_active
        assert reopened.rebalancer.state == "draining"
        for key, value in oracle.items():
            assert reopened.get(key) == value
        reopened.rebalancer.drain_until_done(timeout_s=30.0)
        reopened.rebalancer.finalize()
        _assert_exactly_once(reopened, oracle)
        reopened.close()

    def test_reopen_rolls_flipped_forward(self, tmp_path):
        root = tmp_path / "store"
        store = _create(root)
        oracle = _preload(store)
        rebalancer = store.begin_rebalance(weights=WEIGHTS)
        rebalancer.drain_until_done(timeout_s=30.0)
        # Crash between the journal's point of no return and the manifest
        # rewrite: advance the journal by hand, skip finalize.
        rebalancer.journal.advance("flipped")
        store.close()
        reopened = ShardedKVStore.open(root, config=fast_test_config())
        assert not reopened.rebalance_active
        assert reopened.ring.weights == WEIGHTS
        assert RebalanceJournal.load(root) is None
        _assert_exactly_once(reopened, oracle)
        reopened.close()

    def test_create_discards_stale_journal(self, tmp_path):
        root = tmp_path / "store"
        store = _create(root)
        _preload(store, n=12)
        store.begin_rebalance(weights=WEIGHTS)
        store.close()
        assert (root / "rebalance.json").exists()
        fresh = _create(root)  # recreate over the same directory
        assert not fresh.rebalance_active
        assert RebalanceJournal.load(root) is None
        fresh.close()

    def test_drain_pauses_on_dead_source_and_resumes(self, tmp_path):
        store = _create(tmp_path / "store")
        oracle = _preload(store)
        rebalancer = store.begin_rebalance(weights=WEIGHTS, batch_size=8)
        rebalancer.drain(0)  # build the queue
        source, _target = rebalancer.next_pair()
        store.backend.kill_shard(source)
        report = rebalancer.drain()
        assert source in report.paused_on
        assert not report.done
        store.backend.reopen_shard(source)
        rebalancer.drain_until_done(timeout_s=30.0)
        rebalancer.finalize()
        _assert_exactly_once(store, oracle)
        store.close()


class TestShardedFsck:
    def test_clean_store_passes(self, tmp_path):
        root = tmp_path / "store"
        store = _create(root)
        oracle = _preload(store)
        store.close()
        report = fsck_sharded(root)
        assert report.ok
        assert report.placed_ok == len(oracle)
        assert report.rebalance_state is None

    def test_detects_misplaced_and_duplicate_keys(self, tmp_path):
        root = tmp_path / "store"
        store = _create(root)
        oracle = _preload(store, n=20)
        key = sorted(oracle)[0]
        owner = store.shard_of(key)
        stray = (owner + 1) % store.n_shards
        # Plant the key on a shard the ring does not route it to.
        store.backend.call(stray, "put", (key, oracle[key]))
        store.close()
        report = fsck_sharded(root)
        assert not report.ok
        text = "\n".join(report.errors)
        assert "misplaced" in text
        assert "multiple shards" in text

    def test_mid_migration_placement_downgraded_to_warning(self, tmp_path):
        root = tmp_path / "store"
        store = _create(root)
        _preload(store)
        rebalancer = store.begin_rebalance(weights=WEIGHTS, batch_size=4)
        rebalancer.drain()  # a few keys mid-flight, most still on old owners
        store.close()
        report = fsck_sharded(root)
        assert report.ok, (report.errors, [r.errors for r in report.shards])
        assert report.rebalance_state == "draining"
        assert report.warnings, "expected mid-migration warnings"
