"""Supervisor, circuit breaker and degraded-mode routing — tier-1.

Everything here runs on the :class:`InProcessBackend`'s fault-simulation
hooks (``inject_crash`` / ``inject_hang`` / ``inject_reopen_failures``):
the supervisor is backend-agnostic by design — it only consumes
``shard_alive`` / ``heartbeat_age`` / ``kill_shard`` / ``reopen_shard`` —
so the whole watchdog → restart-budget → breaker → degraded-routing story
is testable without spawning a single process.  Process-level fidelity
(real SIGSTOP, real deadlines, real media) lives in
``test_process_supervision.py`` under the ``sharding`` marker.
"""

from __future__ import annotations

import time

import pytest

from repro.core.config import fast_test_config
from repro.sharding import (
    BatchReport,
    ShardCircuitOpenError,
    ShardCrashedError,
    ShardedKVStore,
    ShardHungError,
    ShardSupervisor,
    ShardUnavailableError,
)

N_SHARDS = 3


def _items(n, tag=b"v"):
    return [(b"key-%04d" % i, tag + b"-%04d" % i) for i in range(n)]


def _store(degraded="fail_fast", **kwargs):
    return ShardedKVStore.create_volatile(
        N_SHARDS,
        segment_size=64,
        n_segments_per_shard=64,
        config=fast_test_config(),
        degraded=degraded,
        **kwargs,
    )


def _supervisor(store, **kwargs):
    kwargs.setdefault("restart_budget", 3)
    kwargs.setdefault("backoff_base_s", 0.0)
    kwargs.setdefault("auto_start", False)
    return ShardSupervisor(store, **kwargs)


class TestSupervisorHealing:
    def test_reopens_crashed_shard(self):
        with _store() as store:
            sup = _supervisor(store)
            store.backend.inject_crash(1)
            assert not store.shard_alive(1)
            sup.run_once()
            assert store.shard_alive(1)
            assert sup.telemetry()["restarts"] == 1
            assert sup.health[1].recovery_times_s

    def test_watchdog_kills_hung_shard_by_heartbeat(self):
        """A hung shard (stale heartbeat, still 'alive') is detected via
        heartbeat age alone — no RPC involved — killed and restarted."""
        with _store() as store:
            sup = _supervisor(store, heartbeat_timeout_s=0.01)
            store.backend.inject_hang(2)
            time.sleep(0.02)
            assert store.backend.heartbeat_age(2) > 0.01
            sup.run_once()  # watchdog kill
            sup.run_once()  # reopen
            assert store.shard_alive(2)
            tel = sup.telemetry()
            assert tel["watchdog_kills"] == 1
            assert tel["restarts"] == 1
            assert store.backend.kills[2] == 1

    def test_stability_resets_episode_budget(self):
        with _store() as store:
            sup = _supervisor(store, stable_after_s=0.0)
            store.backend.inject_crash(0)
            sup.run_once()
            assert sup.health[0].attempts == 1
            sup.run_once()  # healthy + stable_after elapsed: episode over
            assert sup.health[0].attempts == 0

    def test_await_healthy_runs_rounds_inline(self):
        with _store() as store:
            sup = _supervisor(store)
            store.backend.inject_crash(0)
            store.backend.inject_crash(2)
            assert sup.await_healthy(timeout=5.0)
            assert all(store.shard_alive(s) for s in range(N_SHARDS))


class TestCircuitBreaker:
    def test_budget_exhaustion_trips_breaker(self):
        with _store() as store:
            sup = _supervisor(store, restart_budget=2)
            store.backend.inject_crash(1)
            store.backend.inject_reopen_failures(1, 10)
            for _ in range(4):
                sup.run_once()
            assert sup.breaker_open(1)
            assert sup.open_breakers() == [1]
            assert sup.telemetry()["breaker_trips"] == 1
            # Open breaker: no further reopen attempts are burned.
            attempts = sup.health[1].attempts
            sup.run_once()
            assert sup.health[1].attempts == attempts

    def test_reset_closes_breaker_and_heals(self):
        with _store() as store:
            sup = _supervisor(store, restart_budget=1)
            store.backend.inject_crash(1)
            store.backend.inject_reopen_failures(1, 1)
            for _ in range(3):
                sup.run_once()
            assert sup.breaker_open(1)
            sup.reset(1)
            assert not sup.breaker_open(1)
            assert store.shard_alive(1)
            assert sup.healthy()


class TestDegradedFailFast:
    def test_default_raises_with_partial_results(self):
        with _store("fail_fast") as store:
            items = _items(24)
            store.put_many(items)
            store.backend.inject_crash(1)
            with pytest.raises(ShardCrashedError) as excinfo:
                store.get_many([k for k, _ in items])
            exc = excinfo.value
            assert exc.shard_ids == [1]
            assert exc.partial_results is not None
            assert exc.shard_status[1] == "crashed"
            ok_shards = [s for s, st in exc.shard_status.items() if st == "ok"]
            assert len(ok_shards) == N_SHARDS - 1

    def test_open_breaker_raises_circuit_error(self):
        with _store("fail_fast") as store:
            sup = _supervisor(store, restart_budget=1)
            store.backend.inject_crash(0)
            store.backend.inject_reopen_failures(0, 5)
            for _ in range(3):
                sup.run_once()
            assert sup.breaker_open(0)
            with pytest.raises(ShardCircuitOpenError):
                store.put_many(_items(12))
            # ShardCircuitOpenError is an unavailability, catchable as such.
            with pytest.raises(ShardUnavailableError):
                store.get_many([k for k, _ in _items(12)])


class TestDegradedPartial:
    def test_put_many_partial_outcomes_under_dead_shard(self):
        with _store("partial") as store:
            items = _items(24)
            report = store.put_many(items)
            assert isinstance(report, BatchReport)
            assert report.ok
            assert report == [report[i] for i in range(len(items))]
            store.backend.inject_crash(1)
            report = store.put_many(_items(24, tag=b"w"))
            assert not report.ok
            dead = report.failed_indices
            assert dead  # shard 1 owned some keys
            for i in dead:
                assert report.outcomes[i] == "crashed"
                assert report[i] is None
            for i in range(len(items)):
                if i not in dead:
                    assert report.outcomes[i] == "ok"
                    assert report[i] is not None

    def test_get_many_reads_survivors_and_reports_dead(self):
        with _store("partial") as store:
            items = _items(24)
            store.put_many(items)
            store.backend.inject_crash(2)
            report = store.get_many([k for k, _ in items])
            for (key, value), outcome, got in zip(
                items, report.outcomes, report
            ):
                if store.shard_of(key) == 2:
                    assert outcome == "crashed" and got is None
                else:
                    assert outcome == "ok" and got == value

    def test_open_breaker_reads_as_misses(self):
        with _store("partial") as store:
            sup = _supervisor(store, restart_budget=1)
            items = _items(24)
            store.put_many(items)
            store.backend.inject_crash(1)
            store.backend.inject_reopen_failures(1, 5)
            for _ in range(3):
                sup.run_once()
            assert sup.breaker_open(1)
            report = store.get_many([k for k, _ in items])
            for key, outcome, got in zip(
                (k for k, _ in items), report.outcomes, report
            ):
                if store.shard_of(key) == 1:
                    assert outcome == "breaker_open" and got is None
                else:
                    assert outcome == "ok"
            # Point GET: answered as a miss without touching the shard.
            dead_key = next(
                k for k, _ in items if store.shard_of(k) == 1
            )
            assert store.get(dead_key) is None
            # A write at an open breaker must raise, never silently drop.
            with pytest.raises(ShardCircuitOpenError):
                store.put(dead_key, b"nope")

    def test_hung_shard_reports_hung_outcome(self):
        with _store("partial") as store:
            items = _items(24)
            store.put_many(items)
            store.backend.inject_hang(0)
            report = store.get_many([k for k, _ in items])
            hung = {
                o for k, o in zip((k for k, _ in items), report.outcomes)
                if store.shard_of(k) == 0
            }
            assert hung == {"hung"}
            assert store.backend.kills[0] == 1  # deadline killed it


class TestDegradedBlock:
    def test_block_waits_for_supervised_heal(self):
        with _store("block", block_timeout_s=10.0) as store:
            sup = _supervisor(store)
            items = _items(24)
            store.put_many(items)
            store.backend.inject_crash(1)
            # No background thread: put_many itself drives supervisor
            # rounds while blocked, heals shard 1, then completes fully.
            report = store.put_many(items)
            assert report.ok
            assert store.shard_alive(1)
            final = store.get_many([k for k, _ in items])
            assert final.ok
            assert list(final) == [v for _, v in items]

    def test_block_times_out_with_residual_failure(self):
        with _store("block", block_timeout_s=0.2) as store:
            sup = _supervisor(store, restart_budget=1)
            store.backend.inject_crash(1)
            store.backend.inject_reopen_failures(1, 50)
            with pytest.raises(ShardUnavailableError) as excinfo:
                store.put_many(_items(24))
            assert 1 in excinfo.value.shard_ids
            assert excinfo.value.partial_results is not None


class TestCallManyPartialAttach:
    """Satellite: the backend itself attaches partial results + status."""

    def test_inprocess_call_many_attaches_partials(self):
        with _store() as store:
            items = _items(24)
            store.put_many(items)
            store.backend.inject_crash(0)
            requests = [
                (s, "len", (), None) for s in range(N_SHARDS)
            ]
            with pytest.raises(ShardCrashedError) as excinfo:
                store.backend.call_many(requests)
            exc = excinfo.value
            assert len(exc.partial_results) == N_SHARDS
            assert exc.partial_results[0] is None
            assert all(
                isinstance(r, int) for r in exc.partial_results[1:]
            )
            assert exc.shard_status == {0: "crashed", 1: "ok", 2: "ok"}

    def test_all_hung_raises_hung_error(self):
        with _store() as store:
            store.backend.inject_hang(0)
            store.backend.inject_hang(1)
            store.backend.inject_hang(2)
            with pytest.raises(ShardHungError):
                store.backend.call_many(
                    [(s, "len", (), None) for s in range(N_SHARDS)]
                )


class TestSupervisorTelemetry:
    def test_facade_telemetry_carries_supervisor_rollup(self):
        with _store() as store:
            sup = _supervisor(store)
            store.backend.inject_crash(2)
            sup.run_once()
            tel = store.telemetry()
            assert tel["supervisor"]["restarts"] == 1
            assert tel["supervisor"]["open_breakers"] == []
            shard2 = tel["supervisor"]["shards"][2]
            assert shard2["restarts"] == 1 and shard2["breaker"] == "closed"
