"""Process-backend supervision: real signals, real deadlines, real media.

Marked ``sharding`` (excluded from tier-1): every test spawns worker
processes.  These are the fidelity twins of ``test_supervisor.py`` —
the SIGSTOP here is a real signal against a real PID, the deadline is a
real ``Connection.poll`` timeout, and recovery re-attaches real
shared-memory media.
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

from repro.core.config import fast_test_config
from repro.nvm.device import DriftConfig
from repro.sharding import (
    ShardedKVStore,
    ShardHungError,
    ShardSupervisor,
)

pytestmark = pytest.mark.sharding

SEGMENT_SIZE = 64
N_SEGMENTS = 64
LOG_SEGMENTS = 4
KEY_CAPACITY = 16


def _items(n, seed=13):
    rng = np.random.default_rng(seed)
    return [
        (
            b"key-%04d" % i,
            rng.integers(0, 256, 40, dtype=np.uint8).tobytes(),
        )
        for i in range(n)
    ]


def _create(tmp_path, **kwargs):
    kwargs.setdefault("config", fast_test_config())
    return ShardedKVStore.create(
        tmp_path / "store",
        3,
        segment_size=SEGMENT_SIZE,
        n_segments_per_shard=N_SEGMENTS,
        backend="process",
        log_segments=LOG_SEGMENTS,
        key_capacity=KEY_CAPACITY,
        **kwargs,
    )


class TestWatchdog:
    def test_sigstop_detected_by_heartbeat_and_restarted(self, tmp_path):
        """A SIGSTOP'd worker answers no RPC and ignores SIGTERM; only its
        stale heartbeat betrays it.  The watchdog must kill (SIGKILL path)
        and the supervisor reopen it — with the data intact."""
        with _create(tmp_path) as store:
            sup = ShardSupervisor(
                store, heartbeat_timeout_s=0.4, restart_budget=3
            )
            items = _items(24)
            store.put_many(items)
            pid = store.backend.worker_pid(1)
            os.kill(pid, signal.SIGSTOP)
            time.sleep(0.6)
            assert store.backend.heartbeat_age(1) > 0.4
            assert store.shard_alive(1)  # OS still reports it alive
            assert sup.await_healthy(timeout=30.0)
            tel = sup.telemetry()
            assert tel["watchdog_kills"] == 1
            assert tel["restarts"] == 1
            assert store.backend.worker_pid(1) != pid  # fresh worker
            assert store.get_many([k for k, _ in items]) == [
                v for _, v in items
            ]

    def test_hung_worker_never_blocks_rpc_past_deadline(self, tmp_path):
        """The regression the tentpole demands: an RPC to a SIGSTOP'd
        worker raises within its deadline plus the bounded kill grace —
        never an unbounded ``recv``."""
        with _create(tmp_path) as store:
            pid = store.backend.worker_pid(2)
            os.kill(pid, signal.SIGSTOP)
            deadline = 0.5
            t0 = time.monotonic()
            with pytest.raises(ShardHungError):
                store.backend.call(2, "get", (b"k",), deadline=deadline)
            elapsed = time.monotonic() - t0
            # deadline + SIGTERM grace + SIGKILL grace, with slack.
            bound = deadline + 2 * store.backend.kill_grace_s + 1.0
            assert elapsed < bound
            # The shard is killed (pipe desynchronised ⇒ unusable) and
            # reopen recovers it from the surviving media.
            assert not store.shard_alive(2)
            store.reopen_shard(2)
            assert store.shard_alive(2)

    def test_watchdog_kill_wakes_inflight_rpc(self, tmp_path):
        """kill_shard is lock-free: killing a hung worker closes its pipe
        and wakes an RPC blocked in poll() long before its own deadline."""
        import threading

        with _create(tmp_path) as store:
            pid = store.backend.worker_pid(0)
            os.kill(pid, signal.SIGSTOP)
            result: dict = {}

            def rpc():
                t0 = time.monotonic()
                try:
                    store.backend.call(0, "get", (b"k",), deadline=30.0)
                except ShardHungError:
                    result["elapsed"] = time.monotonic() - t0

            thread = threading.Thread(target=rpc)
            thread.start()
            time.sleep(0.3)  # let the RPC block in poll()
            store.backend.kill_shard(0, hung=True)
            thread.join(10.0)
            assert not thread.is_alive()
            # Woken by the closed pipe, not the 30 s deadline.
            assert result["elapsed"] < 10.0


class TestDegradedProcess:
    def test_partial_put_many_under_dead_shard(self, tmp_path):
        """Satellite: one dead shard, ``partial`` policy — survivors'
        sub-batches commit and are reported, the dead shard's items carry
        an explicit outcome, and after reopen a retry completes."""
        with _create(tmp_path, degraded="partial") as store:
            items = _items(24)
            first = store.put_many(items)
            assert first.ok
            store.backend.kill_shard(1)
            report = store.put_many(_items(24, seed=29))
            assert not report.ok
            dead = report.failed_indices
            assert dead and all(
                report.outcomes[i] in ("crashed", "hung") for i in dead
            )
            survivors = [i for i in range(len(items)) if i not in dead]
            assert survivors and all(
                report[i] is not None for i in survivors
            )
            store.reopen_shard(1)
            retry = store.put_many(_items(24, seed=29))
            assert retry.ok
            final = store.get_many([k for k, _ in items])
            assert final.ok
            assert list(final) == [
                v for _, v in _items(24, seed=29)
            ]


class TestInWorkerMaintenance:
    def test_scrubber_heals_drift_on_worker_cadence(self, tmp_path):
        """Satellite: drift accumulates, and the *in-worker* scrubber
        heals it on its own cadence — the facade issues no scrub calls,
        only the clock advance and the final reads."""
        with _create(
            tmp_path,
            scrubber=True,
            compactor=True,
            maintenance=True,
            scrub_interval_s=0.02,
            drift=DriftConfig(retention_mean=5_000.0),
        ) as store:
            items = _items(24)
            store.put_many(items)
            drifted = sum(store.advance_time(20_000))
            assert drifted > 0
            deadline = time.monotonic() + 30.0
            healed = False
            while time.monotonic() < deadline:
                tel = store.telemetry()
                if tel["scrub"]["bits_healed"] > 0:
                    healed = True
                    break
                time.sleep(0.1)
            assert healed, "in-worker scrubber never healed a bit"
            assert store.get_many([k for k, _ in items]) == [
                v for _, v in items
            ]
            info = store.maintenance_info()
            assert all(
                any(w["name"] == "scrubber" and w["running"] for w in shard)
                for shard in info
            )
            # Loop state rolls up through telemetry too.
            tel = store.telemetry()
            assert all("maintenance" in t for t in tel["shards"])

    def test_maintenance_survives_reopen(self, tmp_path):
        """A reopened worker rebuilds its maintenance loops from the spec
        — supervision config travels in the manifest entry."""
        with _create(
            tmp_path,
            scrubber=True,
            maintenance=True,
        ) as store:
            store.put_many(_items(12))
            store.backend.kill_shard(0)
            store.reopen_shard(0)
            info = store.maintenance_info()[0]
            assert any(
                w["name"] == "scrubber" and w["running"] for w in info
            )


class TestBoundedTeardown:
    def test_close_with_sigstopped_worker_is_bounded(self, tmp_path):
        """Satellite: close() must escalate SIGTERM→SIGKILL instead of
        joining a stopped worker forever."""
        store = _create(tmp_path)
        grace = store.backend.close_grace_s + 2 * store.backend.kill_grace_s
        store.put_many(_items(12))
        os.kill(store.backend.worker_pid(1), signal.SIGSTOP)
        t0 = time.monotonic()
        store.close()
        # One stopped worker: shutdown poll + term/kill grace, with slack
        # for the two healthy workers' snapshot writes.
        assert time.monotonic() - t0 < grace + 10.0

    def test_reopen_kills_still_running_hung_worker(self, tmp_path):
        """reopen_shard on a SIGSTOP'd (OS-alive but marked hung) worker
        must kill it for real before re-attaching the media."""
        with _create(tmp_path) as store:
            items = _items(24)
            store.put_many(items)
            pid = store.backend.worker_pid(2)
            os.kill(pid, signal.SIGSTOP)
            store.backend.kill_shard(2, hung=True)  # watchdog's move
            store.reopen_shard(2)
            assert store.shard_alive(2)
            with pytest.raises(OSError):
                os.kill(pid, 0)  # old worker truly reaped
            assert store.get_many([k for k, _ in items]) == [
                v for _, v in items
            ]
