"""Process-backend shard workers: parallel ops, crash isolation, recovery.

Marked ``sharding`` (excluded from tier-1): every test spawns real worker
processes.  The crash tests are the sharded extension of the crash-sweep
story — a worker process dying mid-``put_many`` is one channel's
controller losing power while the media (the parent's shared-memory
block) survives; reopening must roll back only that shard's in-flight
transaction and leave every other shard untouched.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import fast_test_config
from repro.sharding import ShardCrashedError, ShardedKVStore

pytestmark = pytest.mark.sharding

SEGMENT_SIZE = 64
N_SEGMENTS = 64


def _config():
    return fast_test_config()


def _items(n, seed=13, prefix=b"key"):
    rng = np.random.default_rng(seed)
    return [
        (
            b"%s-%04d" % (prefix, i),
            rng.integers(0, 256, 40, dtype=np.uint8).tobytes(),
        )
        for i in range(n)
    ]


@pytest.fixture
def store(tmp_path):
    store = ShardedKVStore.create(
        tmp_path / "store",
        3,
        segment_size=SEGMENT_SIZE,
        n_segments_per_shard=N_SEGMENTS,
        config=_config(),
        backend="process",
        log_segments=4,
        key_capacity=16,
    )
    yield store
    store.close()


class TestProcessOps:
    def test_round_trip_and_telemetry(self, store):
        items = _items(24)
        addrs = store.put_many(items)
        assert all(a is not None for a in addrs)
        assert store.get_many([k for k, _ in items]) == [
            v for _, v in items
        ]
        assert len(store) == 24
        rollup = store.telemetry()
        assert rollup["n_shards"] == 3
        assert rollup["n_keys"] == 24
        assert all(store.shard_alive(s) for s in range(3))
        assert all(
            store.backend.worker_pid(s) is not None for s in range(3)
        )

    def test_matches_inprocess_backend(self, tmp_path):
        """The process backend must be a pure execution change: same trace,
        same addresses, same contents as the in-process baseline."""
        kwargs = dict(
            segment_size=SEGMENT_SIZE,
            n_segments_per_shard=N_SEGMENTS,
            config=_config(),
        )
        proc = ShardedKVStore.create_volatile(2, backend="process", **kwargs)
        inproc = ShardedKVStore.create_volatile(
            2, backend="inprocess", **kwargs
        )
        items = _items(20)
        assert proc.put_many(items) == inproc.put_many(items)
        key = items[3][0]
        assert proc.delete(key) is inproc.delete(key)
        assert proc.keys() == inproc.keys()
        proc.close()
        inproc.close()

    def test_retrain_broadcast(self, store):
        store.put_many(_items(12))
        assert store.retrain() == [True, True, True]
        assert store.wait_for_retrain(60.0) == [True, True, True]
        assert store.model_epochs() == [2, 2, 2]

    def test_open_recovers_in_workers(self, store, tmp_path):
        items = _items(18)
        store.put_many(items)
        store.close()
        reopened = ShardedKVStore.open(
            tmp_path / "store", config=_config(), backend="process"
        )
        assert all(r is not None for r in reopened.recovery_reports())
        for key, value in items:
            assert reopened.get(key) == value
        reopened.close()


class TestShardCrash:
    def test_crash_mid_put_many_isolated_and_recovered(self, store):
        base = _items(24)
        store.put_many(base)

        batch = _items(12, seed=29, prefix=b"crash")
        victim = store.shard_of(batch[0][0])
        # Arm a simulated power loss inside the victim's undo-log write
        # path: the worker dies mid-transaction via os._exit, after some
        # earlier PUTs of the batch committed.
        store.backend.call(
            victim, "arm_crash", ("tx.write",), {"after": 2}
        )

        with pytest.raises(ShardCrashedError) as excinfo:
            store.put_many(batch)
        assert excinfo.value.shard_ids == [victim]
        assert not store.shard_alive(victim)

        # Survivors never noticed: alive, serving reads AND writes,
        # including the slices of the crashed batch they committed.
        for shard in range(store.n_shards):
            if shard != victim:
                assert store.shard_alive(shard)
        for key, value in base:
            if store.shard_of(key) != victim:
                assert store.get(key) == value
        for key, value in batch:
            if store.shard_of(key) != victim:
                assert store.get(key) == value

        # A fresh worker re-attaches to the surviving media and runs undo
        # recovery: only the victim's in-flight transaction rolls back.
        store.reopen_shard(victim)
        assert store.shard_alive(victim)
        report = store.backend.call(victim, "recovery_report")
        assert report.rolled_back_records >= 1

        # Every pre-crash key on the victim survived; each crashed-batch
        # key on the victim is either fully committed or fully absent.
        for key, value in base:
            if store.shard_of(key) == victim:
                assert store.get(key) == value
        for key, value in batch:
            if store.shard_of(key) == victim:
                got = store.get(key)
                assert got == value or got is None

        # And the shard takes writes again.
        store.put(b"after-crash", b"y" * 40)
        assert store.get(b"after-crash") == b"y" * 40

    def test_crashed_shard_errors_until_reopened(self, store):
        store.put_many(_items(12))
        victim = store.shard_of(b"doom")
        store.backend.call(victim, "arm_crash", ("tx.begin",), {"after": 0})
        with pytest.raises(ShardCrashedError):
            store.put(b"doom", b"z" * 40)
        # Further calls to the dead shard fail fast with the same error.
        with pytest.raises(ShardCrashedError):
            store.backend.call(victim, "len")
        store.reopen_shard(victim)
        store.put(b"doom", b"z" * 40)
        assert store.get(b"doom") == b"z" * 40

    def test_reopen_refuses_live_shard(self, store):
        with pytest.raises(RuntimeError, match="alive"):
            store.reopen_shard(0)
