"""Rebalance fault coverage: coordinator crash sweep + endpoint SIGKILLs.

Marked ``rebalance`` (excluded from tier-1 by default); CI runs these in
their own job with hard timeouts, mirroring the ``gc``/``chaos`` jobs.
"""

from __future__ import annotations

import pytest

from repro.testing.chaos import (
    REBALANCE_CRASH_SITES,
    run_rebalance_crash_sweep,
    run_rebalance_storm,
)

pytestmark = pytest.mark.rebalance


class TestCrashSweep:
    def test_recovers_from_every_fault_site_firing(self, tmp_path):
        """A coordinator crash at every firing of every rebalance fault
        site, then ``open()``: every acked key readable exactly once on
        its ring owner, journal retired, cross-shard fsck clean."""
        report = run_rebalance_crash_sweep(tmp_path / "sweep", seed=3)
        # Every site must actually be exercised, or the sweep is inert.
        for site in REBALANCE_CRASH_SITES:
            assert report.site_firings.get(site, 0) >= 1, site
        failed = [
            (case.site, case.k, case.errors)
            for case in report.cases
            if not case.ok
        ]
        assert report.ok, failed
        # Copy/delete crashes land mid-drain (journal resumes from
        # "draining"); the flip crash lands past the point of no return
        # ("flipped" rolls forward without draining).
        states = {
            case.site: case.resumed_from
            for case in report.cases
            if case.crashed
        }
        assert states["rebalance.copy"] == "draining"
        assert states["rebalance.delete"] == "draining"
        assert states["rebalance.flip"] == "flipped"


class TestStorm:
    def test_sigkill_source_and_target_mid_drain(self, tmp_path):
        """SIGKILL both endpoints of the in-flight migration pair while
        foreground writes continue under ``partial``: the supervisor
        heals the fleet, the drain resumes, and the migration lands with
        zero lost acked writes and no duplicate/orphan keys."""
        report = run_rebalance_storm(
            tmp_path / "storm", seed=5, rounds=4, heal_timeout_s=120.0
        )
        assert report.kills >= 2, "storm never killed an endpoint pair"
        assert report.all_healthy, report.summary()
        assert report.finalized, report.summary()
        assert not report.lost_writes, report.lost_writes[:5]
        assert not report.corrupt_keys, report.corrupt_keys[:5]
        assert not report.duplicate_keys, report.duplicate_keys[:5]
        assert not report.orphan_keys, report.orphan_keys[:5]
        assert report.fsck_ok, report.fsck_errors[:5]
        assert report.keys_copied >= 1
