"""``KVStore.put_many`` and ``WriteBatcher.put_many`` behaviour.

The batched storage entry points must be observationally identical to
sequential ``put`` calls — same final store contents, same recycling of
updated segments, same durability contract.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import KVStore
from repro.core.batching import WriteBatcher
from repro.testing import FaultInjector, KVCrashHarness

from tests.conftest import SEGMENT_SIZE, make_engine


class TestKVStorePutManyVolatile:
    def test_matches_sequential_puts(self):
        seq_store = KVStore(make_engine(seed=61))
        bat_store = KVStore(make_engine(seed=61))
        rng = np.random.default_rng(4)
        items = [
            (
                f"key-{i}".encode(),
                rng.integers(0, 256, size=SEGMENT_SIZE, dtype=np.uint8).tobytes(),
            )
            for i in range(8)
        ]
        expected = [seq_store.put(k, v) for k, v in items]
        got = bat_store.put_many(items)
        assert got == expected
        for key, value in items:
            assert bat_store.get(key) == value
        assert len(bat_store) == len(seq_store) == len(items)

    def test_updates_recycle_old_segments(self):
        store = KVStore(make_engine(seed=67))
        engine = store.engine
        free_before = engine.dap.free_count()
        first = store.put_many([(b"k1", b"v1"), (b"k2", b"v2")])
        second = store.put_many([(b"k1", b"v1-new"), (b"k2", b"v2-new")])
        assert store.get(b"k1") == b"v1-new"
        assert store.get(b"k2") == b"v2-new"
        assert set(first).isdisjoint(second)
        # Old segments went back into the pool: net claim is 2 addresses.
        assert engine.dap.free_count() == free_before - 2
        assert engine.allocated_count == 2

    def test_duplicate_key_in_batch_last_wins(self):
        store = KVStore(make_engine(seed=71))
        engine = store.engine
        free_before = engine.dap.free_count()
        addrs = store.put_many(
            [(b"dup", b"first"), (b"other", b"x"), (b"dup", b"second")]
        )
        assert store.get(b"dup") == b"second"
        assert len(store) == 2
        # The first write's segment was recycled within the same batch.
        assert engine.dap.free_count() == free_before - 2
        assert addrs[0] != addrs[2]

    def test_validation_and_empty(self):
        store = KVStore(make_engine(seed=73))
        assert store.put_many([]) == []
        with pytest.raises(TypeError, match="keys must be bytes"):
            store.put_many([("not-bytes", b"v")])
        with pytest.raises(TypeError, match="non-empty bytes"):
            store.put_many([(b"k", b"")])


@pytest.fixture(scope="module")
def harness():
    return KVCrashHarness()


class TestKVStorePutManyDurable:
    def test_batch_commits_and_survives_reopen(self, harness):
        device, _, store = harness.fresh(FaultInjector())
        rng = np.random.default_rng(6)
        items = [
            (
                f"dk{i}".encode(),
                rng.integers(0, 256, size=24, dtype=np.uint8).tobytes(),
            )
            for i in range(5)
        ]
        addrs = store.put_many(items)
        assert len(set(addrs)) == len(items)
        for key, value in items:
            assert store.get(key) == value
        # Full recovery from the media alone sees every batched PUT.
        reopened = harness.reopen(device)
        for key, value in items:
            assert reopened.get(key) == value
        assert len(reopened) == len(items)

    def test_batch_update_recycles_durably(self, harness):
        device, _, store = harness.fresh(FaultInjector())
        store.put_many([(b"a", b"one"), (b"b", b"two")])
        store.put_many([(b"a", b"ONE"), (b"b", b"TWO")])
        reopened = harness.reopen(device)
        assert reopened.get(b"a") == b"ONE"
        assert reopened.get(b"b") == b"TWO"
        assert len(reopened) == 2


class TestWriteBatcherPutMany:
    def _batcher(self, seed=79):
        return WriteBatcher(make_engine(seed=seed))

    def test_matches_sequential_puts(self):
        sequential = WriteBatcher(make_engine(seed=83))
        batched = WriteBatcher(make_engine(seed=83))
        rng = np.random.default_rng(8)
        values = [
            rng.integers(0, 256, size=int(n), dtype=np.uint8).tobytes()
            for n in rng.integers(1, SEGMENT_SIZE // 2, size=12)
        ]
        seq_handles = [sequential.put(v) for v in values]
        bat_handles = batched.put_many(values)
        sequential.flush()
        batched.flush()
        assert [h.locator for h in bat_handles] == [
            h.locator for h in seq_handles
        ]
        for value, handle in zip(values, bat_handles):
            assert batched.read(handle.locator) == value

    def test_open_tail_stays_buffered(self):
        batcher = self._batcher()
        small = [b"aa", b"bb", b"cc"]
        handles = batcher.put_many(small)
        assert batcher.open_bytes == 6
        assert not any(h.resolved for h in handles)
        batcher.flush()
        assert all(h.resolved for h in handles)

    def test_full_batches_flush_in_one_engine_call(self):
        batcher = self._batcher(seed=89)
        calls = []
        original = batcher.engine.write_many

        def counting_write_many(values):
            calls.append(len(values))
            return original(values)

        batcher.engine.write_many = counting_write_many
        chunk = b"x" * (SEGMENT_SIZE // 2)
        handles = batcher.put_many([chunk] * 7)
        # 7 half-segment values -> 3 full batches written in ONE call,
        # 1 value left buffered.
        assert calls == [3]
        assert sum(h.resolved for h in handles) == 6
        assert batcher.open_bytes == len(chunk)

    def test_failed_write_commits_nothing(self):
        batcher = self._batcher(seed=97)
        engine = batcher.engine

        def exploding_write_many(values):
            raise RuntimeError("device offline")

        engine.write_many = exploding_write_many
        chunk = b"y" * SEGMENT_SIZE
        with pytest.raises(RuntimeError, match="device offline"):
            batcher.put_many([chunk, chunk])
        assert batcher.open_bytes == 0
        assert batcher.live_batches() == 0

    def test_validation(self):
        batcher = self._batcher(seed=101)
        with pytest.raises(TypeError, match="non-empty bytes"):
            batcher.put_many([b"ok", b""])
        with pytest.raises(ValueError, match="exceeds"):
            batcher.put_many([b"z" * (SEGMENT_SIZE + 1)])
        assert batcher.open_bytes == 0
