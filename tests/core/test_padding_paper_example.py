"""The paper's worked padding example (Table 1 + Figure 5).

A 12-segment PCM grouped into 3 clusters; input d1 = [0,0,0,1] padded to 8
bits under each strategy/position.  The paper's exact cluster predictions
depend on its trained model, but the *structural* properties it illustrates
are checkable exactly:

- padded outputs have the model width and embed d1 at the right place;
- one-padding of d1 ([1,1,1,1,0,0,0,1]) is nearest (Hamming) to cluster 2 of
  Table 1, as the paper's walk-through states;
- zero-padding at the beginning lands nearest to cluster 1 ([0,0,0,0,0,0,0,1]
  is closest to [0,0,0,0,1,0,1,0]-style contents), matching Figure 5's row.
"""

import numpy as np

from repro.core.padding import Padder

# Table 1 of the paper: 12 memory segments in 3 clusters.
TABLE_1 = {
    0: [
        [0, 0, 1, 1, 1, 1, 0, 1],
        [0, 0, 1, 0, 1, 1, 0, 0],
        [0, 0, 1, 1, 1, 1, 0, 0],
        [0, 0, 1, 1, 1, 0, 0, 0],
    ],
    1: [
        [1, 0, 0, 0, 1, 0, 1, 1],
        [0, 0, 0, 0, 1, 0, 1, 1],
        [0, 0, 0, 0, 1, 1, 1, 1],
        [0, 0, 0, 0, 1, 0, 1, 0],
    ],
    2: [
        [1, 0, 1, 1, 0, 0, 0, 0],
        [0, 1, 1, 1, 0, 0, 1, 0],
        [1, 1, 1, 1, 0, 0, 0, 0],
        [1, 1, 0, 1, 0, 0, 0, 0],
    ],
}

D1 = np.array([0.0, 0.0, 0.0, 1.0])


def nearest_cluster(bits: np.ndarray) -> int:
    """Hamming-nearest cluster of Table 1 (average member distance)."""
    best, best_dist = -1, None
    for cluster, members in TABLE_1.items():
        dist = float(
            np.mean([np.abs(np.array(m) - bits).sum() for m in members])
        )
        if best_dist is None or dist < best_dist:
            best, best_dist = cluster, dist
    return best


class TestPaperExample:
    def test_one_padding_beginning_matches_walkthrough(self):
        """§4.1.1: one-padding d1 at the beginning gives [1,1,1,1,0,0,0,1],
        and 'cluster 2 is predicted to be the best cluster'."""
        out = Padder(8, strategy="one", position="begin").pad(D1)
        assert out.tolist() == [1, 1, 1, 1, 0, 0, 0, 1]
        assert nearest_cluster(out) == 2

    def test_zero_padding_beginning(self):
        """Figure 5's zero/beginning row: output [0,0,0,0,0,0,0,1],
        predicted cluster 1."""
        out = Padder(8, strategy="zero", position="begin").pad(D1)
        assert out.tolist() == [0, 0, 0, 0, 0, 0, 0, 1]
        assert nearest_cluster(out) == 1

    def test_input_based_middle_distribution(self):
        """§4.1.2: for d1 the padded part contains 1s with probability 0.25.
        Check the long-run frequency of the IB padding bits."""
        ones = 0
        total = 0
        for seed in range(40):
            padder = Padder(8, strategy="input", position="middle", seed=seed)
            out = padder.pad(D1)
            # middle position: data halves at the ends, pad in between.
            pad_bits = out[2:6]
            ones += int(pad_bits.sum())
            total += 4
        assert abs(ones / total - 0.25) < 0.1

    def test_every_strategy_embeds_d1(self):
        """All outputs are 8 bits and contain d1 at the position's slot."""
        for strategy in ("zero", "one", "random", "input", "dataset"):
            out = Padder(
                8, strategy=strategy, position="begin", seed=1
            ).pad(D1)
            assert out.size == 8
            assert np.array_equal(out[4:], D1)
            out = Padder(
                8, strategy=strategy, position="end", seed=1
            ).pad(D1)
            assert np.array_equal(out[:4], D1)

    def test_table1_clusters_are_internally_similar(self):
        """Sanity: Table 1's clusters group by Hamming similarity — the
        within-cluster distance is below the between-cluster distance."""
        within, between = [], []
        clusters = list(TABLE_1.items())
        for ci, members in clusters:
            arr = np.array(members)
            for i in range(len(arr)):
                for j in range(i + 1, len(arr)):
                    within.append(np.abs(arr[i] - arr[j]).sum())
            for cj, others in clusters:
                if cj <= ci:
                    continue
                for a in members:
                    for b in others:
                        between.append(np.abs(np.array(a) - np.array(b)).sum())
        assert np.mean(within) < np.mean(between)

    def test_lstm_toy_example_last_bit_prediction(self):
        """§4.1.3's toy: a 7-bits-in / 1-bit-out LSTM learns to complete
        Table-1-like items so they join the right cluster.  We train on the
        full 8-bit members and check the learned continuation of the
        cluster-1 prefixes is a high bit (cluster 1 items end in 1, 1, 1, 0
        — mostly 1), matching the paper's predictions ~[1.056, 0.869,
        1.038] for the cluster-1 items."""
        from repro.ml.lstm import LSTMPredictor

        rows = [np.array(m, dtype=float) for ms in TABLE_1.values() for m in ms]
        train = np.stack([np.tile(r, 6) for r in rows])  # lengthen patterns
        lstm = LSTMPredictor(window_bits=8, chunk_bits=1, hidden_dim=12, seed=0)
        lstm.fit(train, epochs=8, lr=1e-2, include_reversed=False)
        # Predict the 8th bit of the first three cluster-1 items from their
        # repeated prefix.
        votes = []
        for member in TABLE_1[1][:3]:
            context = np.tile(np.array(member, dtype=float), 3)[:-1]
            pad = lstm.generate(context, 1)
            votes.append(pad[0])
        assert np.mean(votes) >= 0.5
