"""End-to-end data integrity: catalog CRCs, the repair ladder, recovery
verification and the read-vs-relocation race."""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kvstore import CorruptValueError, KVStore
from repro.nvm import DriftConfig, Scrubber
from repro.testing import CrashError, FaultInjector, KVCrashHarness
from repro.testing.crash_sweep import check_durable_invariants

DRIFT = DriftConfig(retention_mean=10, retention_sigma=0.3, seed=3)


@pytest.fixture(scope="module")
def harness():
    """Durable stores over drifting media (shared trained pipeline)."""
    return KVCrashHarness(n_segments=48, segment_size=64, seed=7, drift=DRIFT)


@pytest.fixture(scope="module")
def plain_harness():
    """Durable stores over immortal, drift-free media."""
    return KVCrashHarness(n_segments=48, segment_size=64, seed=7)


def fill(store, n_keys=6, seed=5, size=48):
    rng = np.random.default_rng(seed)
    oracle = {}
    for i in range(n_keys):
        key = b"k%02d" % i
        value = rng.integers(0, 256, size, dtype=np.uint8).tobytes()
        store.put(key, value)
        oracle[key] = value
    return oracle


class TestCrcContract:
    def test_crc_mirrors_every_live_value(self, plain_harness):
        import zlib

        _, _, store = plain_harness.fresh(FaultInjector())
        oracle = fill(store)
        for key, value in oracle.items():
            addr, _ = store.index.get(key)
            assert store._crc_by_addr[addr] == zlib.crc32(value) & 0xFFFFFFFF
        store.delete(b"k00")
        assert len(store._crc_by_addr) == len(oracle) - 1

    def test_get_repairs_drifted_value_via_scrubber(self, harness):
        device, _, store = harness.fresh(FaultInjector())
        oracle = fill(store)
        device.advance_time(100)
        assert device.drifted_cell_count() > 0
        for key, value in oracle.items():
            assert store.get(key) == value
        assert store.corrupt_reads_detected > 0

    def test_repair_persists_on_media(self, harness):
        """Satellite regression: a heal must stick — the second read of a
        drifted value needs no repair because the first one refreshed the
        media, not just the returned bytes."""
        device, _, store = harness.fresh(FaultInjector())
        oracle = fill(store)
        device.advance_time(100)
        for key, value in oracle.items():
            assert store.get(key) == value
        # Heals hit the media: no live segment senses drifted any more
        # (free segments still do — nobody refreshed them).
        controller = store.engine.controller
        for key in oracle:
            addr, length = store.index.get(key)
            assert not controller.drift_mask(addr, length).any()
        detected = store.corrupt_reads_detected
        for key, value in oracle.items():
            assert store.get(key) == value
        assert store.corrupt_reads_detected == detected  # no re-repairs

    def test_unrepairable_read_raises_not_returns(self, harness):
        device, _, store = harness.fresh(FaultInjector())
        oracle = fill(store, n_keys=3)
        store.scrubber = None  # sever the repair path
        device.advance_time(100)
        raised = 0
        for key, value in oracle.items():
            try:
                got = store.get(key)
            except CorruptValueError:
                raised += 1
            else:
                assert got == value  # clean or self-consistent only
        assert raised > 0
        assert store.corrupt_reads_detected >= raised

    def test_recovery_counts_crc_mismatches(self, harness):
        device, _, store = harness.fresh(FaultInjector())
        fill(store)
        device.advance_time(100)
        assert device.drifted_cell_count() > 0
        recovered = harness.reopen(device)
        assert recovered.recovery.crc_mismatches > 0
        # Detection at open never destroys data: the attached scrubber
        # still heals every value on first read.
        assert dict(recovered.items()) == dict(store.items())

    def test_clean_store_recovers_with_zero_mismatches(self, plain_harness):
        device, _, store = plain_harness.fresh(FaultInjector())
        fill(store)
        recovered = plain_harness.reopen(device)
        assert recovered.recovery.crc_mismatches == 0


class TestRelocationReadRace:
    def test_concurrent_gets_never_see_torn_relocation(self, plain_harness):
        """Satellite b: GET racing an in-flight relocation must never
        return stale or foreign bytes — the epoch re-check retries."""
        _, _, store = plain_harness.fresh(FaultInjector())
        oracle = fill(store, n_keys=4, size=40)
        keys = list(oracle)
        errors: list[BaseException] = []
        stop = threading.Event()

        def reader():
            try:
                while not stop.is_set():
                    for key in keys:
                        value = store.get(key)
                        if value is not None and value != oracle[key]:
                            raise AssertionError(
                                f"{key!r}: read {value!r}"
                            )
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            # Overwrite in place repeatedly: each PUT retires the old
            # segment for its key and lands the value on a fresh one —
            # the exact window the epoch check guards.
            for _ in range(150):
                for key in keys:
                    store.put(key, oracle[key])
        finally:
            stop.set()
            for thread in threads:
                thread.join(10)
        assert not errors, errors[:2]


class TestCatalogCrcCrashConsistency:
    """Hypothesis: crash a PUT batch at any transactional point — after
    reopening, every live catalog record's CRC matches its value bytes."""

    @given(
        data=st.data(),
        n_ops=st.integers(2, 8),
        site=st.sampled_from(["tx.begin", "tx.log", "tx.write", "tx.commit"]),
    )
    @settings(max_examples=25, deadline=None)
    def test_crash_then_reopen_keeps_crcs_consistent(
        self, plain_harness, data, n_ops, site
    ):
        import zlib

        rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
        k = data.draw(st.integers(0, max(0, n_ops * 2 - 1)))
        faults = FaultInjector()
        faults.arm(site, error=CrashError, after=k, times=1)
        device, _, store = plain_harness.fresh(faults)
        oracle = {}
        try:
            for i in range(n_ops):
                key = b"h%02d" % (i % 4)
                value = rng.integers(0, 256, 40, dtype=np.uint8).tobytes()
                store.put(key, value)
                oracle[key] = value
        except CrashError:
            pass
        del store
        recovered = plain_harness.reopen(device)
        assert recovered.recovery.crc_mismatches == 0
        for entry in recovered.catalog.scan():
            addr = recovered.pool.object_address(entry.slot)
            value = recovered.pool.read(addr, entry.value_len)
            assert zlib.crc32(value) & 0xFFFFFFFF == entry.crc


class TestScrubberUnderLoad:
    """Hypothesis: pause/resume scheduling of a live scrubber never breaks
    reads or durable invariants while put_many traffic is in flight."""

    @given(
        seed=st.integers(0, 2**31),
        toggles=st.lists(st.booleans(), min_size=1, max_size=6),
    )
    @settings(max_examples=10, deadline=None)
    def test_pause_resume_under_concurrent_put_many(
        self, harness, seed, toggles
    ):
        device, _, store = harness.fresh(FaultInjector())
        scrubber = Scrubber(store, segments_per_round=4, interval_s=0.0005)
        rng = np.random.default_rng(seed)
        oracle = fill(store, n_keys=4, seed=seed % 1000)
        scrubber.start()
        try:
            for paused in toggles:
                (scrubber.pause if paused else scrubber.resume)()
                items = []
                for i in range(4):
                    key = b"b%02d" % i
                    value = rng.integers(
                        0, 256, 40, dtype=np.uint8
                    ).tobytes()
                    items.append((key, value))
                    oracle[key] = value
                store.put_many(items)
                device.advance_time(3)
                for key, value in oracle.items():
                    assert store.get(key) == value
        finally:
            scrubber.stop()
        assert scrubber.last_error is None, scrubber.last_error
        check_durable_invariants(store, oracle)
