"""Batched write-path equivalence and concurrency properties.

The batched path (``pad_batch`` → ``predict_batch`` → ``DAP.get_many`` →
``controller.write_many``) must be observationally identical to the
sequential one: same padded inputs, same cluster assignments, same
addresses, same accounting.  Equivalence is checked with *twin* objects —
two identically-seeded padders/pipelines/engines, one driven sequentially
and one batched — so the shared RNG/tracker state stays in lockstep.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import fast_test_config
from repro.core.padding import Padder, PaddingPosition, PaddingStrategy
from repro.core.pipeline import EncoderPipeline
from repro.ml.lstm import LSTMPredictor

from tests.conftest import SEGMENT_SIZE, make_engine

PAD_BITS = 96


def _make_padder(strategy: str, position: str) -> Padder:
    lstm = None
    if strategy == "learned":
        lstm = LSTMPredictor(
            window_bits=16, chunk_bits=4, hidden_dim=8, seed=3
        )
    return Padder(
        PAD_BITS, strategy=strategy, position=position, seed=9, lstm=lstm
    )


class TestPadBatchEquivalence:
    @pytest.mark.parametrize("position", PaddingPosition)
    @pytest.mark.parametrize("strategy", PaddingStrategy)
    def test_pad_batch_matches_sequential(self, strategy, position):
        sequential = _make_padder(strategy, position)
        batched = _make_padder(strategy, position)
        rng = np.random.default_rng(5)
        for round_seed in range(3):
            sizes = rng.integers(1, PAD_BITS + 1, size=6)
            items = [
                (rng.random(int(n)) < 0.5).astype(np.float32) for n in sizes
            ]
            expected = np.stack(
                [sequential.pad(i, memory_ones_fraction=0.3) for i in items]
            )
            got = batched.pad_batch(items, memory_ones_fraction=0.3)
            assert got.dtype == np.float32
            np.testing.assert_array_equal(got, expected)
        # The shared state advanced identically on both sides.
        assert batched.tracker.ones == sequential.tracker.ones
        assert batched.tracker.bits == sequential.tracker.bits

    def test_pad_batch_oversize_item_raises(self):
        padder = _make_padder("zero", "end")
        with pytest.raises(ValueError, match="exceeds model width"):
            padder.pad_batch([np.zeros(PAD_BITS + 1, dtype=np.float32)])


PIPE_VALUE_BYTES = 16
PIPE_BITS = PIPE_VALUE_BYTES * 8


def _trained_pipeline(strategy: str) -> EncoderPipeline:
    config = fast_test_config(
        padding_strategy=strategy,
        lstm_window_bits=16,
        lstm_chunk_bits=4,
        lstm_hidden=8,
    )
    pipeline = EncoderPipeline(PIPE_BITS, config)
    rng = np.random.default_rng(7)
    data = (rng.random((32, PIPE_BITS)) < 0.4).astype(np.float64)
    pipeline.fit(data)
    return pipeline


@pytest.fixture(scope="module", params=PaddingStrategy)
def pipeline_pair(request):
    """Two identically-trained pipelines for one padding strategy."""
    return _trained_pipeline(request.param), _trained_pipeline(request.param)


class TestPredictBatchEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(
        values=st.lists(
            st.binary(min_size=1, max_size=PIPE_VALUE_BYTES),
            min_size=1,
            max_size=6,
        )
    )
    def test_predict_batch_matches_sequential(self, pipeline_pair, values):
        batch_pipe, seq_pipe = pipeline_pair
        batched = batch_pipe.predict_batch(values, memory_ones_fraction=0.35)
        sequential = [
            seq_pipe.predict_cluster(v, memory_ones_fraction=0.35)
            for v in values
        ]
        assert batched.tolist() == sequential

    def test_empty_batch(self, pipeline_pair):
        batch_pipe, _ = pipeline_pair
        assert batch_pipe.predict_batch([]).size == 0

    def test_batch_counts_as_many_predictions(self):
        pipeline = _trained_pipeline("zero")
        pipeline.predict_batch([b"ab", b"cd", b"ef"])
        assert pipeline.prediction_count == 3
        assert pipeline.mean_prediction_latency_us > 0.0


def _assert_stats_equal(a, b):
    """Integer counters must match exactly; float accumulators to 1e-12
    (the batched path sums per-write costs in a different order)."""
    import dataclasses

    for field in dataclasses.fields(a):
        va, vb = getattr(a, field.name), getattr(b, field.name)
        if isinstance(va, float):
            assert va == pytest.approx(vb, rel=1e-12), field.name
        else:
            assert va == vb, field.name


class TestWriteManyEquivalence:
    def _values(self, n, rng, length=SEGMENT_SIZE):
        return [
            rng.integers(0, 256, size=length, dtype=np.uint8).tobytes()
            for _ in range(n)
        ]

    def test_write_many_matches_sequential_writes(self):
        seq_engine = make_engine(seed=23)
        bat_engine = make_engine(seed=23)
        values = self._values(12, np.random.default_rng(1))
        sequential = [seq_engine.write(v) for v in values]
        batched = bat_engine.write_many(values)
        assert batched == sequential  # same addresses AND WriteResults
        _assert_stats_equal(seq_engine.stats.snapshot(), bat_engine.stats.snapshot())
        assert seq_engine.dap.sizes() == bat_engine.dap.sizes()

    def test_write_many_mixed_lengths_matches_sequential(self):
        seq_engine = make_engine(seed=29)
        bat_engine = make_engine(seed=29)
        rng = np.random.default_rng(2)
        values = [
            rng.integers(0, 256, size=int(n), dtype=np.uint8).tobytes()
            for n in rng.integers(1, SEGMENT_SIZE + 1, size=10)
        ]
        sequential = [seq_engine.write(v) for v in values]
        batched = bat_engine.write_many(values)
        assert batched == sequential
        _assert_stats_equal(seq_engine.stats.snapshot(), bat_engine.stats.snapshot())

    def test_write_many_empty(self):
        engine = make_engine(seed=37)
        assert engine.write_many([]) == []

    def test_write_many_oversize_value_raises_before_placing(self):
        engine = make_engine(seed=41)
        free_before = engine.dap.free_count()
        with pytest.raises(ValueError, match="exceeds segment size"):
            engine.write_many([b"x", b"y" * (SEGMENT_SIZE + 1)])
        assert engine.dap.free_count() == free_before
        assert engine.allocated_count == 0

    def test_write_many_releases_batch_on_device_error(self):
        from repro.testing.faults import FaultInjector

        engine = make_engine(seed=43)
        engine.faults = FaultInjector()
        values = self._values(4, np.random.default_rng(3))
        free_before = engine.dap.free_count()
        engine.faults.arm("device.write", error=RuntimeError("boom"), after=2)
        with pytest.raises(RuntimeError, match="boom"):
            engine.write_many(values)
        assert engine.failed_writes == len(values)
        assert engine.allocated_count == 0
        assert engine.dap.free_count() == free_before


class TestConcurrentWrites:
    def test_no_double_claim_and_exact_pool_accounting(self):
        engine = make_engine(seed=31, n_segments=96)
        total_segments = engine.controller.n_segments
        live_lock = threading.Lock()
        live: set[int] = set()
        errors: list[str] = []

        def track_claim(addrs):
            with live_lock:
                for addr in addrs:
                    if addr in live:
                        errors.append(f"double claim of {addr}")
                    live.add(addr)

        def track_release(addrs):
            with live_lock:
                live.difference_update(addrs)

        def worker(tid: int) -> None:
            rng = np.random.default_rng(100 + tid)
            try:
                for i in range(12):
                    if i % 3 == 0:
                        values = [
                            rng.integers(
                                0, 256, size=SEGMENT_SIZE, dtype=np.uint8
                            ).tobytes()
                            for _ in range(4)
                        ]
                        placed = engine.write_many(values)
                        addrs = [addr for addr, _ in placed]
                    else:
                        addr, _ = engine.write(
                            rng.integers(
                                0, 256, size=SEGMENT_SIZE, dtype=np.uint8
                            ).tobytes()
                        )
                        addrs = [addr]
                    track_claim(addrs)
                    track_release(addrs)
                    engine.release_many(addrs)
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(repr(exc))

        threads = [
            threading.Thread(target=worker, args=(tid,)) for tid in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        assert engine.allocated_count == 0
        assert engine.dap.free_count() == total_segments
        # Every write and release balanced out: per-cluster pools hold each
        # address exactly once.
        seen: set[int] = set()
        for cluster, pool_size in engine.dap.sizes().items():
            assert pool_size >= 0
        snapshot = engine.dap.snapshot()
        for addrs in snapshot.values():
            for addr in addrs:
                assert addr not in seen
                seen.add(addr)
        assert len(seen) == total_segments
