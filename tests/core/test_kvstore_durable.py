"""Durable-mode KVStore tests: transactional writes and full recovery.

A "restart" here is the real thing: the device is the only object carried
over; controller, pool, catalog, index, validity map, allocator and DAP
are all rebuilt by :meth:`KVStore.open`.
"""

import pytest

from repro.core import KVStore
from repro.core.config import fast_test_config
from repro.nvm import MemoryController, NVMDevice
from repro.pmem import PersistentCatalog, PersistentPool
from repro.testing import (
    CrashError,
    FaultInjector,
    KVCrashHarness,
    check_durable_invariants,
)


@pytest.fixture(scope="module")
def harness():
    return KVCrashHarness()


class TestDurableLifecycle:
    def test_put_get_delete_roundtrip(self, harness):
        _, _, store = harness.fresh(FaultInjector())
        assert store.put(b"alpha", b"one") >= 0
        store.put(b"beta", b"two")
        assert store.get(b"alpha") == b"one"
        assert store.get(b"beta") == b"two"
        assert store.delete(b"alpha") is True
        assert store.get(b"alpha") is None
        assert store.delete(b"alpha") is False
        assert len(store) == 1

    def test_update_recycles_old_segment(self, harness):
        _, _, store = harness.fresh(FaultInjector())
        addr1 = store.put(b"k", b"v1")
        addr2 = store.put(b"k", b"v2-longer")
        assert addr1 != addr2
        assert store.get(b"k") == b"v2-longer"
        free = set(store.pool.free_addresses())
        assert addr1 in free and addr2 not in free

    def test_epoch_increases_per_put(self, harness):
        _, _, store = harness.fresh(FaultInjector())
        store.put(b"a", b"x")
        store.put(b"b", b"y")
        store.put(b"a", b"z")
        epochs = sorted(e.epoch for e in store.catalog.scan())
        assert len(epochs) == len(set(epochs)) == 2  # live records only
        assert store.catalog.max_epoch() == 3

    def test_key_exceeding_capacity_raises(self, harness):
        _, _, store = harness.fresh(FaultInjector())
        with pytest.raises(ValueError, match="key capacity"):
            store.put(b"K" * (harness.key_capacity + 1), b"v")


class TestReopenFromMedia:
    def test_reopen_rebuilds_everything_from_media_alone(self, harness):
        """Acceptance: a fresh PersistentPool over the same device must
        reconstruct index, validity map, allocator state and DAP."""
        device, _, store = harness.fresh(FaultInjector())
        oracle = {}
        for i in range(20):
            key = b"user%03d" % (i % 7)
            value = bytes([i + 1]) * (i + 1)
            store.put(key, value)
            oracle[key] = value
        store.delete(b"user003")
        del oracle[b"user003"]
        expected = dict(store.items())
        assert expected == oracle
        del store  # every DRAM structure dies here

        reopened = harness.reopen(device)
        check_durable_invariants(reopened, oracle)
        report = reopened.recovery
        assert report is not None
        assert report.rolled_back_records == 0  # clean shutdown
        assert report.live_objects == len(oracle)
        assert report.free_objects == (
            reopened.pool.capacity_objects - len(oracle)
        )
        assert report.duplicate_keys_dropped == 0
        assert report.max_epoch == 20

    def test_reopened_store_stays_fully_functional(self, harness):
        device, _, store = harness.fresh(FaultInjector())
        store.put(b"a", b"1")
        store.put(b"b", b"2")
        del store
        reopened = harness.reopen(device)
        reopened.put(b"c", b"3")
        reopened.put(b"a", b"1-updated")
        reopened.delete(b"b")
        assert dict(reopened.items()) == {b"a": b"1-updated", b"c": b"3"}
        # Epochs continue past the recovered maximum.
        assert reopened.catalog.max_epoch() > 2

    def test_reopen_empty_store(self, harness):
        device, _, store = harness.fresh(FaultInjector())
        del store
        reopened = harness.reopen(device)
        assert len(reopened) == 0
        assert reopened.recovery.live_objects == 0
        check_durable_invariants(reopened, {})


class TestCrashedPut:
    def test_crash_mid_put_preserves_previous_value(self, harness):
        faults = FaultInjector()
        device, _, store = harness.fresh(faults)
        store.put(b"k", b"stable")
        faults.arm("tx.write", error=CrashError, after=1, torn_fraction=0.5)
        with pytest.raises(CrashError):
            store.put(b"k", b"doomed")
        del store
        reopened = harness.reopen(device)
        check_durable_invariants(reopened, {b"k": b"stable"})

    def test_unacked_put_is_invisible_after_crash(self, harness):
        """Crashing at the commit site (before the flag clears) must leave
        the un-acknowledged PUT invisible."""
        faults = FaultInjector()
        device, _, store = harness.fresh(faults)
        store.put(b"old", b"acked")
        faults.arm("tx.commit", error=CrashError)
        with pytest.raises(CrashError):
            store.put(b"new", b"never-acked")
        del store
        reopened = harness.reopen(device)
        check_durable_invariants(reopened, {b"old": b"acked"})

    def test_non_crash_error_unclaims_address(self, harness):
        """An ordinary failure inside the transaction rolls back and
        returns the placed address to the DAP (no leak, store usable)."""
        faults = FaultInjector()
        _, _, store = harness.fresh(faults)
        store.put(b"k", b"stable")
        free_before = set(store.pool.free_addresses())
        with faults.injected("tx.write", error=OSError("media error")):
            with pytest.raises(OSError):
                store.put(b"k", b"doomed")
        assert store.get(b"k") == b"stable"
        assert set(store.pool.free_addresses()) == free_before
        assert set(store.engine.free_addresses()) == free_before
        store.put(b"k", b"recovered")  # still fully usable
        assert store.get(b"k") == b"recovered"


class TestConstruction:
    def test_pool_without_catalog_rejected(self, harness):
        _, pool, store = harness.fresh(FaultInjector())
        with pytest.raises(ValueError, match="both pool and catalog"):
            KVStore(store.engine, pool=pool)

    def test_undersized_log_rejected(self):
        """create() must refuse a log too small for a worst-case PUT."""
        device = NVMDevice(
            capacity_bytes=32 * 64, segment_size=64,
            initial_fill="random", seed=0,
        )
        meta = PersistentCatalog.meta_segments_for(32, 1, 64, 16)
        pool = PersistentPool(
            MemoryController(device), log_segments=1, meta_segments=meta
        )
        with pytest.raises(ValueError, match="undo log"):
            KVStore.create(
                pool, config=fast_test_config(), key_capacity=16
            )
