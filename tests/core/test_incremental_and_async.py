"""Incremental DAP indexing and background retraining (§4.1.4, §5.3)."""

import pytest

from repro.core import E2NVM
from repro.core.config import fast_test_config
from repro.nvm import MemoryController
from tests.conftest import make_device


def partial_engine(fraction=0.5, seed=41):
    """Engine trained on only a fraction of the device's segments."""
    device = make_device(seed=seed)
    controller = MemoryController(device)
    engine = E2NVM(controller, fast_test_config(seed=seed))
    n = controller.n_segments
    initial = [controller.segment_address(i) for i in range(int(n * fraction))]
    engine.train(addresses=initial)
    rest = [controller.segment_address(i) for i in range(int(n * fraction), n)]
    return engine, rest


class TestIncrementalIndexing:
    def test_partial_training_indexes_subset(self):
        engine, rest = partial_engine()
        assert engine.dap.free_count() == 64
        assert len(rest) == 64

    def test_add_addresses_extends_pool(self):
        engine, rest = partial_engine()
        engine.add_addresses(rest)
        assert engine.dap.free_count() == 128

    def test_added_addresses_are_usable(self):
        engine, rest = partial_engine()
        engine.add_addresses(rest)
        seen = set()
        for i in range(100):
            addr, _ = engine.write(bytes([i]) * 64)
            seen.add(addr)
        assert len(seen) == 100

    def test_add_addresses_validation(self):
        engine, rest = partial_engine()
        with pytest.raises(ValueError):
            engine.add_addresses([7])  # unaligned
        with pytest.raises(IndexError):
            engine.add_addresses([128 * 64])  # out of range
        addr, _ = engine.write(b"x" * 64)
        with pytest.raises(ValueError):
            engine.add_addresses([addr])  # allocated

    def test_add_addresses_requires_training(self):
        device = make_device(seed=42)
        engine = E2NVM(MemoryController(device), fast_test_config())
        with pytest.raises(RuntimeError):
            engine.add_addresses([0])

    def test_add_addresses_empty_is_noop(self):
        engine, _ = partial_engine()
        before = engine.dap.free_count()
        engine.add_addresses([])
        assert engine.dap.free_count() == before

    def test_train_with_allocated_address_raises(self):
        engine, rest = partial_engine()
        addr, _ = engine.write(b"y" * 64)
        with pytest.raises(ValueError):
            engine.train(addresses=[addr])


class TestBackgroundRetraining:
    def test_async_retrain_swaps_model(self):
        engine, _ = partial_engine(fraction=1.0, seed=43)
        old_pipeline = engine.pipeline
        thread = engine.train_async()
        thread.join(timeout=60)
        assert not thread.is_alive()
        assert engine.pipeline is not old_pipeline
        assert engine.retrain_count == 1

    def test_async_retrain_preserves_free_pool(self):
        engine, _ = partial_engine(fraction=1.0, seed=44)
        # Claim a few so allocated segments must survive the swap.
        claimed = [engine.write(bytes([i]) * 64)[0] for i in range(10)]
        free_before = engine.dap.free_count()
        thread = engine.train_async()
        thread.join(timeout=60)
        assert engine.dap.free_count() == free_before
        assert engine.allocated_count == 10
        for addr in claimed:
            engine.release(addr)

    def test_writes_continue_during_retrain(self):
        """The paper's lazy-retraining property: operations proceed while
        the new model trains in the background."""
        engine, _ = partial_engine(fraction=1.0, seed=45)
        thread = engine.train_async()
        wrote = 0
        while thread.is_alive() and wrote < 50:
            addr, _ = engine.write(bytes([wrote % 250]) * 64)
            engine.release(addr)
            wrote += 1
        thread.join(timeout=60)
        # Whatever interleaving happened, the engine stays consistent.
        assert engine.dap.free_count() == 128
        addr, _ = engine.write(b"after" * 12 + b"zzzz")
        assert engine.allocated_count == 1

    def test_async_retrain_requires_trained_engine(self):
        device = make_device(seed=46)
        engine = E2NVM(MemoryController(device), fast_test_config())
        with pytest.raises(RuntimeError):
            engine.train_async()

    def test_async_retrain_needs_free_segments(self):
        engine, _ = partial_engine(fraction=1.0, seed=47)
        claimed = []
        while engine.dap.free_count() > 2:
            cluster = max(engine.dap.sizes(), key=engine.dap.sizes().get)
            addr = engine.dap.get(cluster)
            engine._allocated.add(addr)
            claimed.append(addr)
        with pytest.raises(RuntimeError):
            engine.train_async()
