"""KV store tests: CRUD, update recycling, scans, model checking."""

import numpy as np
import pytest

from repro.core import KVStore
from tests.conftest import make_engine


class TestCRUD:
    def test_put_get(self, kvstore):
        kvstore.put(b"key1", b"value1")
        assert kvstore.get(b"key1") == b"value1"

    def test_get_missing_returns_none(self, kvstore):
        assert kvstore.get(b"nope") is None

    def test_update_replaces(self, kvstore):
        kvstore.put(b"k", b"old")
        kvstore.put(b"k", b"new value")
        assert kvstore.get(b"k") == b"new value"
        assert len(kvstore) == 1

    def test_update_recycles_old_address(self, kvstore):
        kvstore.put(b"k", b"old")
        free_before = kvstore.engine.dap.free_count()
        kvstore.put(b"k", b"new")
        # One claimed, one released: net zero.
        assert kvstore.engine.dap.free_count() == free_before

    def test_delete(self, kvstore):
        kvstore.put(b"k", b"v")
        assert kvstore.delete(b"k") is True
        assert kvstore.get(b"k") is None
        assert kvstore.delete(b"k") is False

    def test_delete_recycles(self, kvstore):
        kvstore.put(b"k", b"v")
        free_before = kvstore.engine.dap.free_count()
        kvstore.delete(b"k")
        assert kvstore.engine.dap.free_count() == free_before + 1

    def test_contains_and_len(self, kvstore):
        kvstore.put(b"a", b"1")
        kvstore.put(b"b", b"2")
        assert b"a" in kvstore
        assert b"z" not in kvstore
        assert len(kvstore) == 2

    def test_type_validation(self, kvstore):
        with pytest.raises(TypeError):
            kvstore.put("string-key", b"v")
        with pytest.raises(TypeError):
            kvstore.put(b"k", b"")


class TestScan:
    def test_scan_ordered_range(self, kvstore):
        for i in [5, 1, 9, 3, 7]:
            kvstore.put(b"k%02d" % i, b"v%02d" % i)
        result = kvstore.scan(b"k03", b"k07")
        assert [k for k, _ in result] == [b"k03", b"k05", b"k07"]
        assert [v for _, v in result] == [b"v03", b"v05", b"v07"]

    def test_scan_empty_range(self, kvstore):
        kvstore.put(b"a", b"1")
        assert kvstore.scan(b"x", b"z") == []

    def test_items_and_keys_in_order(self, kvstore):
        for key in (b"c", b"a", b"b"):
            kvstore.put(key, b"v-" + key)
        assert list(kvstore.keys()) == [b"a", b"b", b"c"]
        assert list(kvstore.items()) == [
            (b"a", b"v-a"), (b"b", b"v-b"), (b"c", b"v-c")
        ]


class TestModelChecking:
    def test_against_dict_model(self):
        """Random CRUD stream must match a plain dict at every step."""
        kv = KVStore(make_engine(seed=21))
        model: dict[bytes, bytes] = {}
        rng = np.random.default_rng(0)
        keys = [b"key%02d" % i for i in range(20)]
        for step in range(300):
            key = keys[int(rng.integers(0, len(keys)))]
            op = rng.random()
            if op < 0.5:
                value = bytes(rng.integers(0, 256, 24, dtype=np.uint8))
                kv.put(key, value)
                model[key] = value
            elif op < 0.75:
                assert kv.get(key) == model.get(key), step
            else:
                assert kv.delete(key) == (key in model)
                model.pop(key, None)
        for key in keys:
            assert kv.get(key) == model.get(key)
        assert len(kv) == len(model)

    def test_values_of_mixed_sizes(self, kvstore):
        sizes = [1, 7, 13, 32, 64]
        for i, size in enumerate(sizes):
            kvstore.put(b"k%d" % i, bytes([i + 1]) * size)
        for i, size in enumerate(sizes):
            assert kvstore.get(b"k%d" % i) == bytes([i + 1]) * size

    def test_fill_and_drain(self):
        """Fill a large fraction of the pool, then drain it completely."""
        kv = KVStore(make_engine(seed=22))
        n = 100
        for i in range(n):
            kv.put(b"key%03d" % i, b"payload-%03d" % i)
        assert len(kv) == n
        for i in range(n):
            assert kv.delete(b"key%03d" % i)
        assert len(kv) == 0
        assert kv.engine.dap.free_count() == 128
