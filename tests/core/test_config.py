"""Config and retrain-policy tests."""

import pytest

from repro.core.config import E2NVMConfig, fast_test_config
from repro.core.retraining import RetrainDecision, RetrainPolicy, RetrainStats


class TestConfig:
    def test_defaults_are_valid(self):
        config = E2NVMConfig()
        assert config.n_clusters == 10
        assert config.padding_strategy == "zero"

    def test_validation(self):
        with pytest.raises(ValueError):
            E2NVMConfig(n_clusters=0)
        with pytest.raises(ValueError):
            E2NVMConfig(retrain_threshold=-1)
        with pytest.raises(ValueError):
            E2NVMConfig(hidden=())
        with pytest.raises(ValueError):
            E2NVMConfig(ones_fraction_refresh_writes=-1)
        with pytest.raises(ValueError):
            E2NVMConfig(ones_fraction_sample_segments=0)

    def test_hidden_normalised_to_tuple(self):
        config = E2NVMConfig(hidden=[64, 32])
        assert config.hidden == (64, 32)

    def test_fast_config_overrides(self):
        config = fast_test_config(n_clusters=7, seed=99)
        assert config.n_clusters == 7
        assert config.seed == 99
        # Other fast-test values kept.
        assert config.pretrain_epochs == 3

    def test_fast_config_returns_fresh_instances(self):
        a = fast_test_config()
        b = fast_test_config()
        assert a is not b


class TestRetrainPolicy:
    def test_fires_when_threshold_and_cooldown_met(self):
        policy = RetrainPolicy(min_free_per_cluster=2, cooldown_writes=0)
        assert policy.should_retrain(1, 50, 5) is True
        assert policy.triggers == 1

    def test_threshold_not_tripped(self):
        policy = RetrainPolicy(min_free_per_cluster=2, cooldown_writes=0)
        assert policy.should_retrain(2, 50, 5) is False

    def test_cooldown_blocks(self):
        policy = RetrainPolicy(min_free_per_cluster=2, cooldown_writes=10)
        assert policy.should_retrain(0, 50, 5) is False
        for _ in range(10):
            policy.record_write()
        assert policy.should_retrain(0, 50, 5) is True

    def test_retrain_resets_cooldown(self):
        policy = RetrainPolicy(min_free_per_cluster=1, cooldown_writes=5)
        for _ in range(5):
            policy.record_write()
        assert policy.should_retrain(0, 50, 5) is True
        policy.record_retrain()
        assert policy.should_retrain(0, 50, 5) is False

    def test_needs_enough_free_to_train(self):
        policy = RetrainPolicy(min_free_per_cluster=1, cooldown_writes=0)
        assert policy.should_retrain(0, 3, 5) is False
        assert policy.should_retrain(0, 5, 5) is True


class TestRetrainDecide:
    def test_skip_when_threshold_not_tripped(self):
        policy = RetrainPolicy(min_free_per_cluster=2, cooldown_writes=0)
        assert policy.decide(2, 50, 5) is RetrainDecision.SKIP

    def test_defer_when_too_few_free_segments(self):
        """A wanted retrain with < n_clusters free defers instead of firing
        (training would be impossible) — and counts no trigger."""
        policy = RetrainPolicy(min_free_per_cluster=1, cooldown_writes=0)
        assert policy.decide(0, 3, 5) is RetrainDecision.DEFER
        assert policy.triggers == 0

    def test_pending_retry_ignores_threshold(self):
        policy = RetrainPolicy(min_free_per_cluster=1, cooldown_writes=0)
        # Threshold healthy, but a deferred retrain is pending.
        assert policy.decide(5, 50, 5, pending=True) is RetrainDecision.FIRE
        assert policy.triggers == 0  # a retry is not a new trigger

    def test_pending_retry_respects_cooldown_backoff(self):
        policy = RetrainPolicy(min_free_per_cluster=1, cooldown_writes=5)
        policy.record_retrain()  # e.g. a failed attempt resets the window
        assert policy.decide(0, 50, 5, pending=True) is RetrainDecision.SKIP
        for _ in range(5):
            policy.record_write()
        assert policy.decide(0, 50, 5, pending=True) is RetrainDecision.FIRE


class TestRetrainStats:
    def test_as_dict_keys(self):
        stats = RetrainStats(started=3, succeeded=2, failed=1, deferred=4)
        d = stats.as_dict()
        assert d["retrains_started"] == 3
        assert d["retrains_succeeded"] == 2
        assert d["retrains_failed"] == 1
        assert d["retrains_deferred"] == 4
        assert d["pool_restores"] == 0
