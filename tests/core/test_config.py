"""Config and retrain-policy tests."""

import pytest

from repro.core.config import E2NVMConfig, fast_test_config
from repro.core.retraining import RetrainPolicy


class TestConfig:
    def test_defaults_are_valid(self):
        config = E2NVMConfig()
        assert config.n_clusters == 10
        assert config.padding_strategy == "zero"

    def test_validation(self):
        with pytest.raises(ValueError):
            E2NVMConfig(n_clusters=0)
        with pytest.raises(ValueError):
            E2NVMConfig(retrain_threshold=-1)
        with pytest.raises(ValueError):
            E2NVMConfig(hidden=())

    def test_hidden_normalised_to_tuple(self):
        config = E2NVMConfig(hidden=[64, 32])
        assert config.hidden == (64, 32)

    def test_fast_config_overrides(self):
        config = fast_test_config(n_clusters=7, seed=99)
        assert config.n_clusters == 7
        assert config.seed == 99
        # Other fast-test values kept.
        assert config.pretrain_epochs == 3

    def test_fast_config_returns_fresh_instances(self):
        a = fast_test_config()
        b = fast_test_config()
        assert a is not b


class TestRetrainPolicy:
    def test_fires_when_threshold_and_cooldown_met(self):
        policy = RetrainPolicy(min_free_per_cluster=2, cooldown_writes=0)
        assert policy.should_retrain(1, 50, 5) is True
        assert policy.triggers == 1

    def test_threshold_not_tripped(self):
        policy = RetrainPolicy(min_free_per_cluster=2, cooldown_writes=0)
        assert policy.should_retrain(2, 50, 5) is False

    def test_cooldown_blocks(self):
        policy = RetrainPolicy(min_free_per_cluster=2, cooldown_writes=10)
        assert policy.should_retrain(0, 50, 5) is False
        for _ in range(10):
            policy.record_write()
        assert policy.should_retrain(0, 50, 5) is True

    def test_retrain_resets_cooldown(self):
        policy = RetrainPolicy(min_free_per_cluster=1, cooldown_writes=5)
        for _ in range(5):
            policy.record_write()
        assert policy.should_retrain(0, 50, 5) is True
        policy.record_retrain()
        assert policy.should_retrain(0, 50, 5) is False

    def test_needs_enough_free_to_train(self):
        policy = RetrainPolicy(min_free_per_cluster=1, cooldown_writes=0)
        assert policy.should_retrain(0, 3, 5) is False
        assert policy.should_retrain(0, 5, 5) is True
