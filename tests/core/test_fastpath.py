"""Two-tier fast placement: memo cache, student tier, epoch safety.

The fast layer must be *invisible* in placement behaviour (cache-on and
cache-off twins produce identical addresses for identical value streams,
across model swaps) and *bounded* in adversity (a hostile retrain cadence
can no longer starve a writer).  Cached and student-served placements must
respect health-manager quarantine exactly like teacher-served ones.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fastpath import FastPlacementLayer, PlacementCache, fingerprint
from repro.nvm import MemoryController

from tests.conftest import SEGMENT_SIZE, make_device, make_engine


class TestFingerprint:
    def test_stable_and_content_sensitive(self):
        assert fingerprint(b"abc") == fingerprint(b"abc")
        assert fingerprint(b"abc") != fingerprint(b"abd")
        assert fingerprint(b"abc") == fingerprint(bytearray(b"abc"))
        assert fingerprint(b"") is not None

    def test_non_bytes_values_are_not_fingerprinted(self):
        assert fingerprint(np.zeros(8, dtype=np.float32)) is None


class TestPlacementCache:
    def test_lru_eviction_order(self):
        cache = PlacementCache(2)
        cache.insert("a", 0)
        cache.insert("b", 1)
        assert cache.lookup("a") == 0  # refreshes "a"
        cache.insert("c", 2)  # evicts "b", the LRU entry
        assert cache.lookup("b") is None
        assert cache.lookup("a") == 0
        assert cache.lookup("c") == 2
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_telemetry_counters(self):
        cache = PlacementCache(4)
        assert cache.lookup("x") is None
        cache.insert("x", 3)
        assert cache.lookup("x") == 3
        cache.invalidate()
        assert cache.lookup("x") is None
        assert (cache.hits, cache.misses, cache.invalidations) == (1, 2, 1)
        assert len(cache) == 0

    def test_reinsert_updates_value_without_eviction(self):
        cache = PlacementCache(2)
        cache.insert("a", 0)
        cache.insert("a", 5)
        assert cache.lookup("a") == 5
        assert cache.evictions == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            PlacementCache(0)


class _StubPipeline:
    """Teacher stub: cluster = first byte, and every call is recorded."""

    def __init__(self):
        self.calls: list[list] = []

    def predict_batch(self, values, memory_ones_fraction=None):
        self.calls.append(list(values))
        return np.array([v[0] if len(v) else 0 for v in values], dtype=np.int64)


class TestFastPlacementLayer:
    def test_cache_short_circuits_teacher(self):
        layer = FastPlacementLayer(cache_size=8)
        layer.install(1, None)
        teacher = _StubPipeline()
        first = layer.predict([b"\x02x", b"\x05y"], teacher, 1)
        again = layer.predict([b"\x05y", b"\x02x"], teacher, 1)
        np.testing.assert_array_equal(first, [2, 5])
        np.testing.assert_array_equal(again, [5, 2])
        assert len(teacher.calls) == 1  # second batch fully cache-served
        stats = layer.stats()
        assert stats["cache_hits"] == 2
        assert stats["teacher_served"] == 2

    def test_stale_epoch_refuses_cache_and_inserts(self):
        layer = FastPlacementLayer(cache_size=8)
        layer.install(1, None)
        teacher = _StubPipeline()
        layer.predict([b"\x02x"], teacher, 1)
        # A caller still carrying epoch 0 must not see epoch-1 entries, and
        # its (stale-model) predictions must not poison the cache.
        layer.predict([b"\x02x"], teacher, 0)
        assert len(teacher.calls) == 2
        layer.predict([b"\x02x"], teacher, 1)
        assert len(teacher.calls) == 2  # epoch-1 entry survived untouched

    def test_install_invalidates_wholesale(self):
        layer = FastPlacementLayer(cache_size=8)
        layer.install(1, None)
        teacher = _StubPipeline()
        layer.predict([b"\x02x"], teacher, 1)
        layer.install(2, None)
        layer.predict([b"\x02x"], teacher, 2)
        assert len(teacher.calls) == 2
        assert layer.stats()["cache_invalidations"] == 2

    def test_ndarray_values_bypass_cache_and_student(self):
        layer = FastPlacementLayer(cache_size=8)
        layer.install(1, None)
        teacher = _StubPipeline()
        bits = np.ones(16, dtype=np.float32)
        teacher_calls = []

        class ArrayTeacher:
            def predict_batch(self, values, memory_ones_fraction=None):
                teacher_calls.append(len(values))
                return np.zeros(len(values), dtype=np.int64)

        layer.predict([bits], ArrayTeacher(), 1)
        layer.predict([bits], ArrayTeacher(), 1)
        assert teacher_calls == [1, 1]  # never cached

    def test_unconfident_student_defers_to_teacher(self):
        class TimidStudent:
            trained = True
            segment_size = 4
            train_agreement = 1.0

            def predict(self, features):
                n = len(features)
                return np.zeros(n, dtype=np.int64), np.full(n, 0.2)

        layer = FastPlacementLayer(cache_size=8, student_confidence=0.9)
        layer.install(1, TimidStudent())
        teacher = _StubPipeline()
        out = layer.predict([b"\x03abc"], teacher, 1)
        np.testing.assert_array_equal(out, [3])  # teacher's answer
        stats = layer.stats()
        assert stats["student_deferred"] == 1
        assert stats["student_served"] == 0
        assert stats["teacher_served"] == 1

    def test_confident_student_serves_and_memoises(self):
        class BoldStudent:
            trained = True
            segment_size = 4
            train_agreement = 1.0

            def predict(self, features):
                n = len(features)
                return np.full(n, 7, dtype=np.int64), np.ones(n)

        layer = FastPlacementLayer(cache_size=8, student_confidence=0.9)
        layer.install(1, BoldStudent())
        teacher = _StubPipeline()
        out = layer.predict([b"\x03abc"], teacher, 1)
        np.testing.assert_array_equal(out, [7])
        assert teacher.calls == []
        # Second sight of the same content: served from the cache.
        layer.predict([b"\x03abc"], teacher, 1)
        stats = layer.stats()
        assert stats["student_served"] == 1
        assert stats["cache_hits"] == 1

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            FastPlacementLayer(cache_size=-1)
        with pytest.raises(ValueError):
            FastPlacementLayer(student_confidence=1.5)

    def test_stats_survive_invalidation_to_empty(self):
        """Regression: an empty PlacementCache is falsy (``__len__``), so a
        truthiness check in stats() zeroed every cache counter right after
        a model swap's wholesale invalidation."""
        layer = FastPlacementLayer(cache_size=8)
        layer.install(1, None)
        teacher = _StubPipeline()
        layer.predict([b"\x02x"], teacher, 1)
        layer.predict([b"\x02x"], teacher, 1)
        layer.install(2, None)  # invalidates: cache now empty, still present
        stats = layer.stats()
        assert stats["cache_capacity"] == 8
        assert stats["cache_hits"] == 1
        assert stats["cache_misses"] == 1
        assert stats["cache_invalidations"] == 2
        assert stats["cache_entries"] == 0


# --------------------------------------------------------------------------
# Twin-object equivalence: cache-on vs cache-off, across a model swap.

TWIN_SEGMENT = 16
TWIN_SEGMENTS = 48


def _twin_engine(cache_size: int):
    return make_engine(
        seed=53,
        n_segments=TWIN_SEGMENTS,
        segment_size=TWIN_SEGMENT,
        fastpath_cache_size=cache_size,
        pretrain_epochs=2,
        joint_epochs=1,
        hidden=(16,),
    )


@pytest.fixture(scope="module")
def twin_engines():
    """Identically seeded engines: one with the memo cache, one without.

    Module-scoped: every Hypothesis example drives both through identical
    operations, so they stay in lockstep across examples too.
    """
    return _twin_engine(cache_size=64), _twin_engine(cache_size=0)


_VALUE_POOL = [
    bytes([b]) * TWIN_SEGMENT for b in (0x00, 0x11, 0x55, 0xAA, 0xEE, 0xFF)
]


class TestCacheEquivalence:
    @settings(max_examples=5, deadline=None)
    @given(
        before=st.lists(st.integers(0, 5), min_size=2, max_size=8),
        after=st.lists(st.integers(0, 5), min_size=2, max_size=8),
    )
    def test_cache_on_off_identical_across_swap(
        self, twin_engines, before, after
    ):
        cached, plain = twin_engines

        def stream(indices):
            claimed = []
            for i in indices:
                value = _VALUE_POOL[i]
                a = cached.place(value)
                b = plain.place(value)
                assert a == b
                claimed.append(a)
            # Restore both pools identically (release re-encodes content,
            # which is identical on both sides).
            cached.release_many(claimed)
            plain.release_many(claimed)

        stream(before)
        # Model swap: both twins retrain on identical free pools, bumping
        # the epoch — the cache must invalidate and keep matching.
        cached.train()
        plain.train()
        stream(after)
        stats = cached.placement_telemetry()
        assert stats["cache_invalidations"] >= 1

    def test_repeated_content_hits_cache(self):
        engine = _twin_engine(cache_size=64)
        value = _VALUE_POOL[2]
        a1 = engine.place(value)
        engine.release(a1)
        a2 = engine.place(value)
        engine.release(a2)
        stats = engine.placement_telemetry()
        assert stats["cache_hits"] >= 1


# --------------------------------------------------------------------------
# Student distillation at engine level.


def _regime_value(rng, regime: int, length: int) -> bytes:
    lo, hi = [(0, 30), (110, 150), (225, 256)][regime]
    return rng.integers(lo, hi, size=length, dtype=np.uint8).tobytes()


def _regime_engine(**overrides):
    """Engine trained on three clearly separable content regimes.

    The teacher needs a few more epochs than the fast test config to align
    its clusters with the regimes — an unconverged teacher hands the
    student near-random labels nothing could generalise from.
    """
    device = make_device(seed=101, segment_size=32, n_segments=120)
    controller = MemoryController(device)
    rng = np.random.default_rng(8)
    for seg in range(120):
        controller.write(seg * 32, _regime_value(rng, seg % 3, 32))
    from repro.core import E2NVM
    from repro.core.config import fast_test_config

    config = fast_test_config(
        student_enabled=True,
        student_confidence=0.6,
        pretrain_epochs=12,
        joint_epochs=6,
        **overrides,
    )
    engine = E2NVM(controller, config)
    engine.train()
    return engine


class TestStudentDistillation:
    def test_student_refreshed_at_train_and_agrees_with_teacher(self):
        engine = _regime_engine()
        student = engine.fast.student
        assert student is not None and student.trained
        assert engine.retrain_stats.student_refreshes == 1
        assert student.train_agreement >= 0.8
        # Held-out values from the same regimes: wherever the student is
        # confident enough to serve, it must agree with the teacher.
        rng = np.random.default_rng(9)
        values = [_regime_value(rng, i % 3, 32) for i in range(30)]
        teacher = engine.pipeline.predict_batch(values)
        labels, conf = student.predict_values(values)
        confident = conf >= engine.config.student_confidence
        assert confident.any()
        agreement = float(np.mean(labels[confident] == teacher[confident]))
        assert agreement >= 0.8

    def test_student_serves_novel_confident_content(self):
        engine = _regime_engine()
        rng = np.random.default_rng(10)
        claimed = [engine.place(_regime_value(rng, i % 3, 32)) for i in range(12)]
        engine.release_many(claimed)
        stats = engine.placement_telemetry()
        assert stats["student_served"] + stats["cache_hits"] > 0

    def test_attach_student_requires_trained(self):
        engine = _twin_engine(cache_size=8)

        class Untrained:
            trained = False

        with pytest.raises(ValueError, match="trained"):
            engine.attach_student(Untrained())

    def test_attach_student_installs_for_current_epoch(self):
        engine = _regime_engine()
        student = engine.fast.student
        engine.adopt(engine.pipeline, engine.free_addresses())
        assert engine.fast.student is None  # adopt clears the student
        engine.attach_student(student)
        assert engine.fast.student is student


class _DudStudent:
    """A trained student whose distillation fidelity is hopeless."""

    trained = True
    train_agreement = 0.25


class TestStudentLowAgreementSurfacing:
    def _engine_with_dud_student(self, monkeypatch, **config_overrides):
        from repro.core import E2NVM
        from repro.core.config import fast_test_config
        from repro.core.pipeline import EncoderPipeline

        monkeypatch.setattr(
            EncoderPipeline,
            "distill_student",
            lambda self, sample: _DudStudent(),
        )
        device = make_device(seed=7)
        return E2NVM(
            MemoryController(device),
            fast_test_config(student_enabled=True, **config_overrides),
        )

    def test_low_agreement_warns_counts_and_flags(self, monkeypatch):
        engine = self._engine_with_dud_student(monkeypatch)
        with pytest.warns(UserWarning, match="student_agreement_warn"):
            engine.train()
        assert engine.retrain_stats.student_low_agreement_warnings == 1
        assert (
            engine.retrain_stats.as_dict()["student_low_agreement_warnings"]
            == 1
        )
        telemetry = engine.placement_telemetry()
        assert telemetry["student_trained"] is True
        assert telemetry["student_low_agreement"] is True
        assert telemetry["student_agreement_warn"] == pytest.approx(
            engine.config.student_agreement_warn
        )

    def test_warn_threshold_zero_disables_the_warning(self, monkeypatch):
        import warnings as warnings_module

        engine = self._engine_with_dud_student(
            monkeypatch, student_agreement_warn=0.0
        )
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            engine.train()
        assert engine.retrain_stats.student_low_agreement_warnings == 0
        assert engine.placement_telemetry()["student_low_agreement"] is False

    def test_healthy_agreement_does_not_flag(self):
        engine = _regime_engine()
        telemetry = engine.placement_telemetry()
        assert telemetry["student_low_agreement"] is (
            telemetry["student_train_agreement"]
            < telemetry["student_agreement_warn"]
        )


# --------------------------------------------------------------------------
# Bounded epoch-mismatch retries (hostile retrain cadence).


class TestBoundedEpochRetries:
    def test_place_terminates_under_hostile_swap_cadence(self):
        engine = make_engine(seed=13, fastpath_cache_size=0)
        real = engine.pipeline.predict_batch
        forward_passes = []

        def hostile(values, memory_ones_fraction=None):
            # Simulate a background swap landing during *every* prediction:
            # without a retry bound, place() would spin forever.
            engine._model_epoch += 1
            forward_passes.append(len(values))
            return real(values, memory_ones_fraction=memory_ones_fraction)

        engine.pipeline.predict_batch = hostile
        addr = engine.place(b"\x01" * 16)
        del engine.pipeline.predict_batch  # restore before the release
        engine.release(addr)
        # N lock-free retries plus the final under-lock prediction.
        assert len(forward_passes) == engine.config.place_epoch_retries + 1

    def test_release_many_terminates_under_hostile_swap_cadence(self):
        engine = make_engine(seed=13, fastpath_cache_size=0)
        addr = engine.place(b"\x01" * 16)
        real = engine.pipeline.predict_batch
        calls = []

        def hostile(values, memory_ones_fraction=None):
            engine._model_epoch += 1
            calls.append(1)
            return real(values, memory_ones_fraction=memory_ones_fraction)

        engine.pipeline.predict_batch = hostile
        engine.release(addr)  # must terminate
        assert len(calls) == engine.config.place_epoch_retries + 1
        assert engine.allocated_count == 0

    def test_writer_makes_progress_while_model_swaps_in_tight_loop(self):
        engine = make_engine(
            seed=17,
            n_segments=48,
            segment_size=16,
            pretrain_epochs=2,
            joint_epochs=1,
            hidden=(16,),
            fastpath_cache_size=32,
        )
        stop = threading.Event()
        swaps = []

        def swapper():
            while not stop.is_set():
                engine.train()
                swaps.append(1)

        thread = threading.Thread(target=swapper)
        thread.start()
        try:
            rng = np.random.default_rng(5)
            for _ in range(20):
                value = rng.integers(0, 256, size=16, dtype=np.uint8).tobytes()
                addr, _ = engine.write(value)
                engine.release(addr)
        finally:
            stop.set()
            thread.join()
        assert engine.allocated_count == 0
        assert len(swaps) >= 1  # the cadence really was hostile


# --------------------------------------------------------------------------
# Cached placements must respect quarantine/retirement.


class TestCacheRespectsQuarantine:
    def test_cached_cluster_never_places_on_quarantined_address(self):
        engine = make_engine(seed=19, n_segments=32, fastpath_cache_size=64)
        value = b"\x42" * SEGMENT_SIZE
        addr = engine.place(value)  # teacher path; cluster memoised
        engine.release(addr)
        engine.quarantine_address(addr)
        for _ in range(6):
            placed = engine.place(value)  # cache-hit path
            assert placed != addr
            engine.release(placed)
        stats = engine.placement_telemetry()
        assert stats["cache_hits"] >= 6

    def test_cache_hit_with_emptied_cluster_falls_back_not_retired(self):
        """Retire a segment, then exhaust its cluster: the cached cluster id
        must route through the DAP's nearest-cluster fallback without ever
        yielding the retired address (satellite: fallback-memo audit)."""
        engine = make_engine(seed=23, n_segments=24, fastpath_cache_size=64)
        value = b"\x37" * SEGMENT_SIZE
        addr = engine.place(value)
        engine.release(addr)
        # Find the cluster the value maps to and quarantine *every* address
        # in it, so a cache-hit placement must take the fallback path.
        cluster = int(
            engine.pipeline.predict_cluster(
                value, memory_ones_fraction=engine._memory_ones_fraction
            )
        )
        doomed = list(engine.dap.snapshot()[cluster])
        for a in doomed:
            engine.quarantine_address(a)
        placed = engine.place(value)
        assert placed not in doomed
        engine.release(placed)
        stats = engine.placement_telemetry()
        assert stats["cache_hits"] >= 1
