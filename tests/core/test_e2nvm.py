"""E2NVM engine tests: Algorithms 1–2, placement quality, retraining."""

import numpy as np
import pytest

from repro.core import E2NVM
from repro.core.config import fast_test_config
from repro.nvm import MemoryController, NVMDevice
from tests.conftest import make_device, make_engine


class TestTraining:
    def test_operations_before_train_raise(self):
        engine = E2NVM(MemoryController(make_device()), fast_test_config())
        with pytest.raises(RuntimeError):
            engine.place(b"x" * 64)
        with pytest.raises(RuntimeError):
            engine.release(0)

    def test_train_populates_every_segment(self, fresh_engine):
        assert fresh_engine.dap.free_count() == 128

    def test_train_requires_free_segments(self):
        device = NVMDevice(capacity_bytes=2 * 64, segment_size=64)
        engine = E2NVM(
            MemoryController(device), fast_test_config(n_clusters=3)
        )
        with pytest.raises(RuntimeError):
            engine.train()

    def test_history_has_loss_curves(self, fresh_engine):
        # Re-train returns fresh curves.
        history = fresh_engine.train()
        assert len(history["train_loss"]) > 0
        assert len(history["joint_loss"]) > 0


class TestWritePath:
    def test_write_claims_and_stores(self, fresh_engine):
        value = b"A" * 64
        addr, result = fresh_engine.write(value)
        assert fresh_engine.controller.read(addr, 64) == value
        assert fresh_engine.allocated_count == 1
        assert result.bits_programmed >= 0

    def test_oversized_value_raises(self, fresh_engine):
        with pytest.raises(ValueError):
            fresh_engine.write(b"x" * 65)

    def test_short_value_writes_only_its_bytes(self, fresh_engine):
        """Padded bits are never written (§4.1)."""
        addr, _ = fresh_engine.write(b"hi")
        before = fresh_engine.controller.peek(addr, 64)
        assert before[:2].tobytes() == b"hi"
        # Bytes after the value kept their pre-write content: write again
        # and confirm the tail is untouched by comparing device stats.
        tail_before = fresh_engine.controller.peek(addr + 2, 62)
        assert tail_before.size == 62

    def test_write_consumes_pool(self, fresh_engine):
        free_before = fresh_engine.dap.free_count()
        fresh_engine.write(b"v" * 64)
        assert fresh_engine.dap.free_count() == free_before - 1

    def test_release_returns_address(self, fresh_engine):
        addr, _ = fresh_engine.write(b"v" * 64)
        free_before = fresh_engine.dap.free_count()
        fresh_engine.release(addr)
        assert fresh_engine.dap.free_count() == free_before + 1
        assert fresh_engine.allocated_count == 0

    def test_release_unallocated_raises(self, fresh_engine):
        with pytest.raises(KeyError):
            fresh_engine.release(0)

    def test_no_double_allocation(self, fresh_engine):
        addrs = [fresh_engine.write(b"%03d" % i * 21 + b"x")[0] for i in range(50)]
        assert len(addrs) == len(set(addrs))


class TestPlacementQuality:
    def test_similar_values_cluster_together(self):
        """On clusterable memory content, writing values drawn from the same
        content classes flips far fewer bits than writing random values."""
        from repro.workloads.datasets import bits_to_values, make_image_dataset

        bits, _ = make_image_dataset(256, 512, n_classes=3, noise=0.05, seed=3)
        seed_values = bits_to_values(bits[:128])
        device = NVMDevice(
            capacity_bytes=128 * 64, segment_size=64, initial_fill="zero"
        )
        controller = MemoryController(device)
        for i, v in enumerate(seed_values):
            controller.write(i * 64, v)
        engine = E2NVM(controller, fast_test_config(n_clusters=3, seed=3))
        engine.train()

        rng = np.random.default_rng(0)
        flips_similar = []
        for v in bits_to_values(bits[128:168]):
            addr, result = engine.write(v)
            flips_similar.append(result.bits_programmed)
            engine.release(addr)
        flips_random = []
        for _ in range(40):
            value = rng.integers(0, 256, 64, dtype=np.uint8).tobytes()
            addr, result = engine.write(value)
            flips_random.append(result.bits_programmed)
            engine.release(addr)
        assert np.mean(flips_similar) < 0.75 * np.mean(flips_random)

    def test_beats_arbitrary_placement_on_clustered_data(self):
        """The headline claim: memory-aware placement flips fewer bits than
        arbitrary placement on clusterable content."""
        from repro.baselines import ArbitraryPlacer
        from repro.workloads.datasets import bits_to_values, make_image_dataset

        bits, _ = make_image_dataset(400, 512, n_classes=4, noise=0.08, seed=5)
        values = bits_to_values(bits)
        seed_values, stream = values[:128], values[128:]

        # E2-NVM engine.
        device_a = NVMDevice(
            capacity_bytes=128 * 64, segment_size=64, initial_fill="zero"
        )
        controller_a = MemoryController(device_a)
        for i, v in enumerate(seed_values):
            controller_a.write(i * 64, v)
        device_a.reset_stats()
        engine = E2NVM(controller_a, fast_test_config(n_clusters=4, seed=5))
        engine.train()
        for v in stream[:100]:
            addr, _ = engine.write(v)
            engine.release(addr)
        e2_flips = device_a.stats.bits_programmed

        # Arbitrary FIFO placement on an identical device.
        device_b = NVMDevice(
            capacity_bytes=128 * 64, segment_size=64, initial_fill="zero"
        )
        controller_b = MemoryController(device_b)
        for i, v in enumerate(seed_values):
            controller_b.write(i * 64, v)
        device_b.reset_stats()
        placer = ArbitraryPlacer([i * 64 for i in range(128)])
        for v in stream[:100]:
            addr = placer.choose(None)
            controller_b.write(addr, v)
            placer.release(addr, None)
        arb_flips = device_b.stats.bits_programmed

        assert e2_flips < arb_flips


class TestRetraining:
    def test_maybe_retrain_fires_when_cluster_starves(self):
        engine = make_engine(
            seed=9, retrain_threshold=2, retrain_cooldown_writes=0
        )
        # Drain one cluster below the threshold.
        sizes = engine.dap.sizes()
        cluster = min(sizes, key=sizes.get)
        while engine.dap.sizes()[cluster] >= 2:
            addr = engine.dap.get(cluster)
            engine._allocated.add(addr)
        assert engine.maybe_retrain() is True
        assert engine.wait_for_retrain(timeout=120)
        assert engine.retrain_count == 1

    def test_cooldown_suppresses_retrain(self):
        engine = make_engine(
            seed=10, retrain_threshold=200, retrain_cooldown_writes=10_000
        )
        # Threshold is absurdly high (every cluster is "starved"), but the
        # cooldown has not expired since train().
        assert engine.maybe_retrain() is False

    def test_auto_retrain_during_writes(self):
        engine = make_engine(
            seed=11,
            retrain_threshold=1,
            retrain_cooldown_writes=0,
            auto_retrain=True,
        )
        for i in range(40):
            addr, _ = engine.write(bytes([i]) * 64)
            engine.release(addr)
        # With threshold 1 and no cooldown, at least one retrain happened
        # whenever some cluster emptied; either way the engine stayed usable.
        assert engine.wait_for_retrain(timeout=120)
        assert engine.dap.free_count() == 128

    def test_memory_footprint_reported(self, fresh_engine):
        assert fresh_engine.memory_footprint_bytes() > 0
