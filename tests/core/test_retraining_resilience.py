"""Resilient-retraining tests: transactional DAP, non-blocking auto-retrain.

These exercise the recovery paths with injected faults: a crashing fit must
leave the Dynamic Address Pool byte-identical, a slow retrain must overlap
concurrent writes, a near-full pool must defer (not fail) the retrain, and
a device write error must un-claim the placed address.
"""

import pytest

from repro.core import KVStore
from repro.testing import FaultError, FaultInjector
from repro.workloads.ycsb import WORKLOADS, YCSBWorkload
from tests.conftest import make_engine


def faulty_engine(seed=21, **config_overrides):
    """A trained engine with a fault injector attached."""
    engine = make_engine(seed=seed, **config_overrides)
    engine.faults = FaultInjector()
    return engine


class TestTransactionalTrain:
    def test_fit_failure_leaves_dap_byte_identical(self):
        engine = faulty_engine(seed=21)
        before = engine.dap.snapshot()
        old_pipeline = engine.pipeline
        engine.faults.arm("train.fit", error=FaultError("fit exploded"))
        with pytest.raises(FaultError):
            engine.train()
        assert engine.dap.snapshot() == before
        assert engine.pipeline is old_pipeline  # old model keeps serving
        assert engine.retrain_stats.failed == 1
        assert engine.retrain_stats.succeeded == 0
        addr, _ = engine.write(b"x" * 64)  # engine still fully usable
        engine.release(addr)

    def test_relabel_failure_restores_pool(self):
        engine = faulty_engine(seed=22)
        before = engine.dap.snapshot()
        old_pipeline = engine.pipeline
        engine.faults.arm("train.relabel", error=FaultError("swap died"))
        with pytest.raises(FaultError):
            engine.train()
        assert engine.dap.snapshot() == before
        assert engine.pipeline is old_pipeline
        assert engine.retrain_stats.pool_restores == 1
        assert engine.retrain_stats.failed == 1

    def test_async_fit_failure_is_recorded_not_raised(self):
        engine = faulty_engine(seed=23)
        old_pipeline = engine.pipeline
        before = engine.dap.snapshot()
        engine.faults.arm("train.fit", error=FaultError("boom"), times=1)
        thread = engine.train_async()
        thread.join(timeout=120)
        assert not thread.is_alive()
        assert engine.pipeline is old_pipeline
        assert engine.dap.snapshot() == before
        assert engine.retrain_stats.failed == 1
        assert isinstance(engine.last_retrain_error, FaultError)
        # The next attempt (fault exhausted) succeeds and swaps.
        thread = engine.train_async()
        thread.join(timeout=120)
        assert engine.pipeline is not old_pipeline
        assert engine.retrain_stats.succeeded == 1

    def test_failed_sync_train_can_be_retried(self):
        engine = faulty_engine(seed=24)
        engine.faults.arm("train.fit", error=FaultError, times=1)
        with pytest.raises(FaultError):
            engine.train()
        history = engine.train()
        assert len(history["train_loss"]) > 0
        assert engine.retrain_stats.failed == 1
        assert engine.retrain_stats.succeeded == 1


class TestNonBlockingAutoRetrain:
    def test_slow_retrain_overlaps_concurrent_writes(self):
        """Acceptance: a slow (fault-injected) retrain overlaps >= 100
        successful writes — maybe_retrain never blocks write()."""
        engine = faulty_engine(
            seed=25,
            retrain_threshold=1000,  # always tripped
            retrain_cooldown_writes=0,
            auto_retrain=True,
        )
        engine.faults.arm("train.fit", delay=3.0, times=1)
        addr, _ = engine.write(b"\x01" * 64)  # schedules the retrain
        engine.release(addr)
        assert engine.retrain_in_flight
        overlapped = 0
        while engine.retrain_in_flight and overlapped < 150:
            a, _ = engine.write(bytes([overlapped % 251]) * 64)
            engine.release(a)
            overlapped += 1
        assert overlapped >= 100
        assert engine.failed_writes == 0
        assert engine.wait_for_retrain(timeout=120)
        assert engine.retrain_stats.succeeded >= 1

    def test_train_async_is_single_flight(self):
        engine = faulty_engine(seed=26)
        engine.faults.arm("train.fit", delay=1.0, times=1)
        t1 = engine.train_async()
        t2 = engine.train_async()  # joins the in-flight retrain
        assert t1 is t2
        t1.join(timeout=120)
        assert engine.retrain_stats.started == 1
        assert engine.retrain_stats.succeeded == 1

    def test_retrain_deferred_when_pool_too_small(self):
        engine = make_engine(
            seed=27, retrain_threshold=50, retrain_cooldown_writes=0
        )
        claimed = []
        while engine.dap.free_count() >= engine.config.n_clusters:
            sizes = engine.dap.sizes()
            cluster = max(sizes, key=sizes.get)
            addr = engine.dap.get(cluster)
            engine._allocated.add(addr)
            claimed.append(addr)
        # Too few free segments to train on: deferred, not failed.
        assert engine.maybe_retrain() is False
        assert engine.retrain_stats.deferred == 1
        assert engine.maybe_retrain() is False
        assert engine.retrain_stats.deferred == 1  # one defer per episode
        # Capacity returns: the deferred retrain fires and succeeds.
        for addr in claimed[:10]:
            engine.release(addr)
        assert engine.maybe_retrain() is True
        assert engine.wait_for_retrain(timeout=120)
        assert engine.retrain_stats.succeeded == 1
        assert engine.retrain_stats.failed == 0

    def test_ycsb_with_auto_retrain_never_fails_a_put(self):
        """Acceptance: a YCSB run with auto_retrain=True completes with zero
        failed PUTs even when retrains fire at < n_clusters free segments."""
        engine = make_engine(
            seed=28,
            n_segments=48,
            retrain_threshold=2,
            # Longer than the 46-write load phase, so the first trigger can
            # only land once just 2 segments are free and must defer.
            retrain_cooldown_writes=60,
            auto_retrain=True,
        )
        store = KVStore(engine)
        workload = YCSBWorkload(
            WORKLOADS["A"], record_count=46, operation_count=150,
            value_size=64, seed=28,
        )
        failed_puts = 0
        for key, value in workload.load_phase():
            try:
                store.put(key, value)
            except Exception:
                failed_puts += 1
        # Pool is now 2 free < 3 clusters: retrains must defer, not crash.
        for op in workload.operations():
            try:
                if op[0] == "read":
                    store.get(op[1])
                elif op[0] in ("update", "insert", "rmw"):
                    store.put(op[1], op[2])
            except Exception:
                failed_puts += 1
        assert failed_puts == 0
        assert engine.retrain_stats.deferred >= 1
        # Deletes return capacity; the deferred retrain completes.
        for i in range(0, 12):
            store.delete(YCSBWorkload.key(i))
        for i in range(20, 40):
            try:
                store.put(YCSBWorkload.key(i), workload.values.value())
            except Exception:
                failed_puts += 1
        assert failed_puts == 0
        assert engine.wait_for_retrain(timeout=120)
        assert engine.retrain_stats.succeeded >= 1
        assert engine.failed_writes == 0


class TestWritePathRecovery:
    def test_device_write_error_unclaims_address(self):
        engine = faulty_engine(seed=29)
        free_before = engine.dap.free_count()
        engine.faults.arm(
            "device.write", error=OSError("nvm media error"), times=1
        )
        with pytest.raises(OSError):
            engine.write(b"z" * 64)
        assert engine.failed_writes == 1
        assert engine.allocated_count == 0
        assert engine.dap.free_count() == free_before
        addr, _ = engine.write(b"z" * 64)  # retry succeeds
        assert engine.controller.read(addr, 64) == b"z" * 64


class TestRetrainCounting:
    def test_retrain_count_counted_in_exactly_one_place(self):
        engine = make_engine(seed=30)
        assert engine.retrain_count == 0  # initial training is not a retrain
        assert engine.retrain_stats.started == 0
        engine.train()  # direct re-train counts...
        assert engine.retrain_count == 1
        thread = engine.train_async()  # ...and so does the async path
        thread.join(timeout=120)
        assert engine.retrain_count == 2
        assert engine.retrain_stats.started == 2
        assert engine.retrain_stats.succeeded == 2
        assert engine.retrain_stats.last_duration_s > 0
        assert (
            engine.retrain_stats.total_duration_s
            >= engine.retrain_stats.last_duration_s
        )


class TestOnesFractionRefresh:
    def test_memory_ones_fraction_tracks_drift(self):
        engine = make_engine(
            seed=31,
            ones_fraction_refresh_writes=8,
            ones_fraction_sample_segments=128,
        )
        base = engine._memory_ones_fraction
        assert 0.4 < base < 0.6  # random fill
        # Stream all-ones values; recycling turns free segments to 0xFF.
        for _ in range(40):
            addr, _ = engine.write(b"\xff" * 64)
            engine.release(addr)
        assert engine._memory_ones_fraction > base + 0.05
        assert engine._ones_fraction_age < 8  # refresh actually ran

    def test_refresh_disabled_when_interval_zero(self):
        engine = make_engine(seed=32, ones_fraction_refresh_writes=0)
        base = engine._memory_ones_fraction
        for _ in range(20):
            addr, _ = engine.write(b"\xff" * 64)
            engine.release(addr)
        assert engine._memory_ones_fraction == base
