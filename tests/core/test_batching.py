"""Write-batcher tests (§4.1.4 small-write batching)."""

import pytest

from repro.core.batching import BatchLocator, WriteBatcher
from tests.conftest import make_engine


@pytest.fixture
def batcher():
    return WriteBatcher(make_engine(seed=31))


class TestBatching:
    def test_put_buffers_until_full(self, batcher):
        batcher.put(b"a" * 20)
        batcher.put(b"b" * 20)
        assert batcher.open_bytes == 40
        assert batcher.live_batches() == 0

    def test_flush_on_overflow(self, batcher):
        # Segment is 64 bytes; the third 30-byte value overflows.
        h1 = batcher.put(b"a" * 30)
        h2 = batcher.put(b"b" * 30)
        h3 = batcher.put(b"c" * 30)
        assert h1.resolved and h2.resolved
        assert not h3.resolved
        assert batcher.live_batches() == 1
        assert batcher.open_bytes == 30

    def test_locator_roundtrip(self, batcher):
        h1 = batcher.put(b"hello")
        h2 = batcher.put(b"world!")
        batcher.flush()
        assert batcher.read(h1.locator) == b"hello"
        assert batcher.read(h2.locator) == b"world!"
        assert h1.locator.batch_addr == h2.locator.batch_addr
        assert h2.locator.offset == 5

    def test_locator_access_autoflushes(self, batcher):
        handle = batcher.put(b"xyz")
        locator = handle.locator  # implicit flush
        assert isinstance(locator, BatchLocator)
        assert batcher.read(locator) == b"xyz"
        assert batcher.open_bytes == 0

    def test_one_engine_write_per_batch(self, batcher):
        writes_before = batcher.engine.stats.writes
        for i in range(6):
            batcher.put(bytes([65 + i]) * 10)  # 60 bytes, one batch
        batcher.flush()
        assert batcher.engine.stats.writes == writes_before + 1

    def test_delete_releases_empty_batch(self, batcher):
        h1 = batcher.put(b"a" * 20)
        h2 = batcher.put(b"b" * 20)
        batcher.flush()
        free_before = batcher.engine.dap.free_count()
        batcher.delete(h1.locator)
        assert batcher.live_batches() == 1
        batcher.delete(h2.locator)
        assert batcher.live_batches() == 0
        assert batcher.engine.dap.free_count() == free_before + 1

    def test_delete_unknown_batch_raises(self, batcher):
        with pytest.raises(KeyError):
            batcher.delete(BatchLocator(12345, 0, 4))

    def test_double_delete_raises_and_keeps_batch_live(self, batcher):
        """Regression: a repeated delete must not double-decrement the
        live-byte count and prematurely release a batch with live values."""
        h1 = batcher.put(b"a" * 20)
        h2 = batcher.put(b"b" * 20)
        batcher.flush()
        free_before = batcher.engine.dap.free_count()
        batcher.delete(h1.locator)
        with pytest.raises(KeyError):
            batcher.delete(h1.locator)  # tombstoned: double free rejected
        assert batcher.live_batches() == 1
        assert batcher.read(h2.locator) == b"b" * 20  # h2 still live
        batcher.delete(h2.locator)
        assert batcher.live_batches() == 0
        assert batcher.engine.dap.free_count() == free_before + 1

    def test_delete_after_batch_release_raises(self, batcher):
        h1 = batcher.put(b"c" * 30)
        batcher.flush()
        batcher.delete(h1.locator)  # batch fully released
        with pytest.raises(KeyError):
            batcher.delete(h1.locator)

    def test_validation(self, batcher):
        with pytest.raises(TypeError):
            batcher.put(b"")
        with pytest.raises(TypeError):
            batcher.put("str")
        with pytest.raises(ValueError):
            batcher.put(b"x" * 65)
        with pytest.raises(ValueError):
            WriteBatcher(batcher.engine, pad_byte=300)

    def test_flush_empty_returns_none(self, batcher):
        assert batcher.flush() is None

    def test_batching_reduces_write_count_vs_direct(self):
        """The point of batching: one segment write instead of many."""
        direct = make_engine(seed=32)
        for i in range(12):
            addr, _ = direct.write(bytes([i]) * 16)
            direct.release(addr)
        direct_writes = direct.stats.writes

        batched_engine = make_engine(seed=32)
        batcher = WriteBatcher(batched_engine)
        for i in range(12):
            batcher.put(bytes([i]) * 16)
        batcher.flush()
        assert batched_engine.stats.writes < direct_writes
