"""Dynamic Address Pool tests: FIFO semantics, fallback, thread safety."""

import threading

import numpy as np
import pytest

from repro.core.address_pool import DynamicAddressPool


class TestBasics:
    def test_validation(self):
        with pytest.raises(ValueError):
            DynamicAddressPool(0)

    def test_populate_and_counts(self):
        pool = DynamicAddressPool(3)
        pool.populate([0, 0, 1, 2, 2, 2], [10, 20, 30, 40, 50, 60])
        assert pool.sizes() == {0: 2, 1: 1, 2: 3}
        assert pool.free_count() == 6
        assert pool.min_cluster_free() == 1

    def test_get_is_fifo(self):
        """The paper takes 'the first available address in the cluster'."""
        pool = DynamicAddressPool(2)
        pool.populate([0, 0, 0], [100, 200, 300])
        assert pool.get(0) == 100
        assert pool.get(0) == 200

    def test_add_recycles(self):
        pool = DynamicAddressPool(2)
        pool.add(1, 42)
        assert pool.get(1) == 42

    def test_add_bad_cluster_raises(self):
        with pytest.raises(KeyError):
            DynamicAddressPool(2).add(5, 1)

    def test_exhausted_raises(self):
        pool = DynamicAddressPool(2)
        with pytest.raises(RuntimeError):
            pool.get(0)

    def test_drain_empties_everything(self):
        pool = DynamicAddressPool(2)
        pool.populate([0, 1, 1], [1, 2, 3])
        assert sorted(pool.drain()) == [1, 2, 3]
        assert pool.free_count() == 0


class TestSnapshotRestore:
    def test_snapshot_preserves_order_and_clusters(self):
        pool = DynamicAddressPool(3)
        pool.populate([0, 0, 2], [10, 20, 30])
        assert pool.snapshot() == {0: (10, 20), 1: (), 2: (30,)}

    def test_restore_reinstates_snapshot_exactly(self):
        pool = DynamicAddressPool(3)
        pool.populate([0, 0, 2], [10, 20, 30])
        saved = pool.snapshot()
        pool.drain()
        pool.add(1, 99)  # divergent state to be discarded
        pool.restore(saved)
        assert pool.snapshot() == saved
        assert pool.get(0) == 10  # FIFO order survived the round trip

    def test_snapshot_is_isolated_from_later_mutation(self):
        pool = DynamicAddressPool(2)
        pool.populate([0], [7])
        saved = pool.snapshot()
        pool.get(0)
        assert saved == {0: (7,), 1: ()}


class TestFallback:
    def test_fallback_without_centroids_uses_fullest(self):
        pool = DynamicAddressPool(3)
        pool.populate([1, 1, 2], [10, 20, 30])
        # Cluster 0 is empty; the fullest non-empty is 1.
        assert pool.get(0) == 10

    def test_fallback_with_centroids_uses_nearest(self):
        pool = DynamicAddressPool(3)
        pool.populate([1, 1, 2], [10, 20, 30])
        centroids = np.array([[0.0, 0.0], [5.0, 5.0], [0.5, 0.5]])
        # Cluster 0's nearest neighbour is cluster 2 despite cluster 1 being
        # fuller.
        assert pool.get(0, centroids=centroids) == 30

    def test_fallback_exhaustion(self):
        pool = DynamicAddressPool(2)
        pool.populate([1], [10])
        pool.get(0)
        with pytest.raises(RuntimeError):
            pool.get(0)

    def test_fallback_memo_safe_after_retirement(self):
        """Retiring addresses *between* model swaps must not stale the
        nearest-cluster fallback memo: the memo holds only cluster visit
        order and every candidate's free list is re-read at use time, so a
        freshly retired address can never be popped via fallback."""
        pool = DynamicAddressPool(3)
        pool.populate([1, 1, 2], [10, 20, 30])
        centroids = np.array([[0.0, 0.0], [0.5, 0.5], [5.0, 5.0]])
        # Prime the memo: cluster 0 falls back to its nearest neighbour 1.
        assert pool.get(0, centroids=centroids) == 10
        # Retire the rest of cluster 1 without touching the centroids (the
        # health manager retires mid-epoch; no model swap happens).
        pool.quarantine(20)
        # Same memoised visit order, but cluster 1 is now empty: the
        # fallback must skip to cluster 2, not resurrect address 20.
        assert pool.get(0, centroids=centroids) == 30
        with pytest.raises(RuntimeError):
            pool.get(0, centroids=centroids)

    def test_fallback_never_pops_quarantined_address(self):
        pool = DynamicAddressPool(2)
        pool.populate([1, 1], [10, 20])
        pool.quarantine(10)
        centroids = np.array([[0.0], [1.0]])
        assert pool.get(0, centroids=centroids) == 20

    def test_get_many_fallback_respects_quarantine(self):
        pool = DynamicAddressPool(3)
        pool.populate([1, 1, 2], [10, 20, 30])
        centroids = np.array([[0.0, 0.0], [0.5, 0.5], [5.0, 5.0]])
        pool.quarantine(10)
        # Batch claim hitting empty cluster 0 twice: 20 (nearest), then 30.
        assert pool.get_many([0, 0], centroids=centroids) == [20, 30]


class TestFootprint:
    def test_footprint_scales_with_entries(self):
        small = DynamicAddressPool(4)
        small.populate([0] * 10, range(10))
        large = DynamicAddressPool(4)
        large.populate([0] * 1000, range(1000))
        assert large.memory_footprint_bytes() > small.memory_footprint_bytes()

    def test_footprint_formula(self):
        pool = DynamicAddressPool(2)
        pool.populate([0, 1], [1, 2])
        expected = 2 * pool.BYTES_PER_ENTRY + 2 * pool.BYTES_PER_CLUSTER
        assert pool.memory_footprint_bytes() == expected


class TestThreadSafety:
    def test_concurrent_get_add(self):
        """Hammer the pool from several threads; every address must be
        handed out exactly once per residence in the pool."""
        pool = DynamicAddressPool(4)
        n = 400
        pool.populate([i % 4 for i in range(n)], range(n))
        claimed: list[int] = []
        lock = threading.Lock()

        def worker():
            for _ in range(n // 8):
                try:
                    addr = pool.get(0)
                except RuntimeError:
                    return
                with lock:
                    claimed.append(addr)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(claimed) == len(set(claimed))
        assert len(claimed) + pool.free_count() == n
