"""Padding strategy tests (§4.1): placement, types, invariants."""

import numpy as np
import pytest

from repro.core.padding import (
    DatasetDistributionTracker,
    Padder,
    assemble,
    split_pad_counts,
)
from repro.ml.lstm import LSTMPredictor


class TestSplitPadCounts:
    def test_begin(self):
        assert split_pad_counts(4, "begin") == (4, 0)

    def test_end(self):
        assert split_pad_counts(4, "end") == (0, 4)

    def test_edges_even(self):
        assert split_pad_counts(4, "edges") == (2, 2)

    def test_edges_odd(self):
        assert split_pad_counts(5, "edges") == (3, 2)

    def test_middle(self):
        assert split_pad_counts(4, "middle") == (2, 2)

    def test_unknown_position(self):
        with pytest.raises(ValueError):
            split_pad_counts(4, "diagonal")


class TestAssemble:
    def setup_method(self):
        self.data = np.array([1.0, 2.0, 3.0, 4.0])
        self.before = np.array([9.0, 9.0])
        self.after = np.array([8.0, 8.0])

    def test_begin(self):
        out = assemble(self.data, self.before, self.after, "begin")
        assert out.tolist() == [9, 9, 8, 8, 1, 2, 3, 4]

    def test_end(self):
        out = assemble(self.data, self.before, self.after, "end")
        assert out.tolist() == [1, 2, 3, 4, 9, 9, 8, 8]

    def test_edges(self):
        out = assemble(self.data, self.before, self.after, "edges")
        assert out.tolist() == [9, 9, 1, 2, 3, 4, 8, 8]

    def test_middle_splits_data(self):
        out = assemble(self.data, self.before, self.after, "middle")
        assert out.tolist() == [1, 2, 9, 9, 8, 8, 3, 4]


class TestTracker:
    def test_prior_is_half(self):
        assert DatasetDistributionTracker().ones_fraction == 0.5

    def test_tracks_running_fraction(self):
        tracker = DatasetDistributionTracker()
        tracker.observe(np.array([1, 1, 1, 0]))
        assert tracker.ones_fraction == pytest.approx(0.75)
        tracker.observe(np.array([0, 0, 0, 0]))
        assert tracker.ones_fraction == pytest.approx(0.375)


class TestPadder:
    def test_validation(self):
        with pytest.raises(ValueError):
            Padder(0)
        with pytest.raises(ValueError):
            Padder(8, strategy="fancy")
        with pytest.raises(ValueError):
            Padder(8, position="sideways")
        with pytest.raises(ValueError):
            Padder(8, strategy="learned")  # needs an LSTM

    def test_oversized_item_raises(self):
        with pytest.raises(ValueError):
            Padder(8).pad(np.ones(9))

    def test_exact_size_is_identity(self):
        data = np.array([1.0, 0.0, 1.0, 1.0])
        out = Padder(4).pad(data)
        assert np.array_equal(out, data)

    def test_zero_padding(self):
        out = Padder(8, strategy="zero", position="end").pad(np.ones(4))
        assert out.tolist() == [1, 1, 1, 1, 0, 0, 0, 0]

    def test_one_padding(self):
        out = Padder(8, strategy="one", position="begin").pad(np.zeros(4))
        assert out.tolist() == [1, 1, 1, 1, 0, 0, 0, 0]

    def test_output_length_always_target(self):
        for strategy in ("zero", "one", "random", "input", "dataset"):
            for position in ("begin", "end", "middle", "edges"):
                padder = Padder(
                    16, strategy=strategy, position=position, seed=1
                )
                out = padder.pad(np.ones(5))
                assert out.size == 16, (strategy, position)

    def test_data_bits_preserved_in_output(self):
        """Whatever the strategy, the original data bits appear intact at
        their position."""
        data = np.array([1.0, 0.0, 0.0, 1.0])
        padder = Padder(8, strategy="random", position="begin", seed=2)
        out = padder.pad(data)
        assert np.array_equal(out[-4:], data)

    def test_input_based_distribution(self):
        """IB padding matches the item's own ones fraction (§4.1.2 example:
        d1=[0,0,0,1] pads with P(1)=0.25)."""
        padder = Padder(4096 + 4, strategy="input", position="end", seed=3)
        data = np.array([0.0, 0.0, 0.0, 1.0])
        out = padder.pad(data)
        pad_bits = out[4:]
        assert abs(pad_bits.mean() - 0.25) < 0.05

    def test_dataset_based_uses_history(self):
        padder = Padder(1028, strategy="dataset", position="end", seed=4)
        # Feed history that is 90% ones.
        padder.tracker.observe(np.ones(9000))
        padder.tracker.observe(np.zeros(1000))
        out = padder.pad(np.zeros(4))
        assert out[4:].mean() > 0.8

    def test_memory_based_requires_fraction(self):
        padder = Padder(8, strategy="memory")
        with pytest.raises(ValueError):
            padder.pad(np.ones(4))
        out = padder.pad(np.ones(4), memory_ones_fraction=1.0)
        assert out.tolist() == [1.0] * 8

    def test_random_padding_deterministic_by_seed(self):
        a = Padder(64, strategy="random", seed=9).pad(np.ones(8))
        b = Padder(64, strategy="random", seed=9).pad(np.ones(8))
        assert np.array_equal(a, b)

    def test_learned_padding_end(self):
        lstm = LSTMPredictor(window_bits=16, chunk_bits=8, hidden_dim=8, seed=0)
        pattern = np.tile([1, 0], 40).astype(float)
        lstm.fit(np.stack([pattern] * 6), epochs=5)
        padder = Padder(32, strategy="learned", position="end", lstm=lstm)
        out = padder.pad(pattern[:24])
        assert out.size == 32
        assert np.array_equal(out[:24], pattern[:24])
        assert set(np.unique(out[24:])) <= {0.0, 1.0}

    def test_learned_padding_begin_uses_reversed_model(self):
        lstm = LSTMPredictor(window_bits=16, chunk_bits=8, hidden_dim=8, seed=1)
        pattern = np.tile([1, 1, 0, 0], 20).astype(float)
        lstm.fit(np.stack([pattern] * 6), epochs=5)
        padder = Padder(32, strategy="learned", position="begin", lstm=lstm)
        out = padder.pad(pattern[:24])
        assert np.array_equal(out[8:], pattern[:24])
