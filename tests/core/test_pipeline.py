"""EncoderPipeline tests: training gate, padding integration, latency stats."""

import numpy as np
import pytest

from repro.core.config import fast_test_config
from repro.core.pipeline import EncoderPipeline
from repro.workloads.datasets import bits_to_values, make_image_dataset


def trained_pipeline(strategy="zero", seed=0, bits=128):
    config = fast_test_config(padding_strategy=strategy, seed=seed)
    pipeline = EncoderPipeline(bits, config)
    X, _ = make_image_dataset(120, bits, n_classes=3, noise=0.1, seed=seed)
    pipeline.fit(X)
    return pipeline, X


class TestPipeline:
    def test_validation(self):
        with pytest.raises(ValueError):
            EncoderPipeline(0, fast_test_config())

    def test_fit_checks_width(self):
        pipeline = EncoderPipeline(64, fast_test_config())
        with pytest.raises(ValueError):
            pipeline.fit(np.zeros((10, 32)))

    def test_predict_full_width_bytes(self):
        pipeline, X = trained_pipeline()
        value = bits_to_values(X[:1])[0]
        cluster = pipeline.predict_cluster(value)
        assert 0 <= cluster < 3

    def test_predict_short_value_uses_padding(self):
        pipeline, _ = trained_pipeline()
        cluster = pipeline.predict_cluster(b"hi")  # 16 bits of 128
        assert 0 <= cluster < 3

    def test_predict_bit_vector_input(self):
        pipeline, X = trained_pipeline()
        assert 0 <= pipeline.predict_cluster(X[0]) < 3

    def test_predict_segments_matches_model(self):
        pipeline, X = trained_pipeline()
        labels = pipeline.predict_segments(X[:10])
        assert labels.shape == (10,)

    def test_latency_tracking(self):
        pipeline, X = trained_pipeline()
        assert pipeline.mean_prediction_latency_us == 0.0
        pipeline.predict_cluster(X[0])
        pipeline.predict_cluster(X[1])
        assert pipeline.prediction_count == 2
        assert pipeline.mean_prediction_latency_us > 0.0

    def test_learned_strategy_trains_lstm(self):
        pipeline, _ = trained_pipeline(strategy="learned")
        assert pipeline.lstm is not None
        assert pipeline.lstm.trained
        assert 0 <= pipeline.predict_cluster(b"abcd") < 3

    def test_memory_strategy_threads_fraction(self):
        pipeline, _ = trained_pipeline(strategy="memory")
        cluster = pipeline.predict_cluster(b"xy", memory_ones_fraction=0.3)
        assert 0 <= cluster < 3

    def test_centroids_shape(self):
        pipeline, _ = trained_pipeline()
        assert pipeline.centroids.shape == (3, 4)  # fast config latent_dim=4

    def test_deterministic_given_seed(self):
        p1, X = trained_pipeline(seed=42)
        p2, _ = trained_pipeline(seed=42)
        for row in X[:5]:
            assert p1.predict_cluster(row) == p2.predict_cluster(row)
