"""Compute-cost model and phase-timeline tests."""

import pytest

from repro.profiling import ComputeCostModel, PhaseTimeline
from repro.profiling.compute import mlp_flops_per_sample


class TestComputeModel:
    def test_mlp_flops(self):
        assert mlp_flops_per_sample([4, 3]) == 24
        assert mlp_flops_per_sample([4, 3, 2]) == 24 + 12

    def test_training_flops_scale_with_samples_and_epochs(self):
        model = ComputeCostModel()
        base = model.vae_training_flops(128, (64,), 8, 100, 5)
        assert model.vae_training_flops(128, (64,), 8, 200, 5) == 2 * base
        assert model.vae_training_flops(128, (64,), 8, 100, 10) == 2 * base

    def test_training_flops_scale_with_dims(self):
        model = ComputeCostModel()
        small = model.vae_training_flops(64, (32,), 4, 100, 5)
        big = model.vae_training_flops(1024, (32,), 4, 100, 5)
        assert big > small

    def test_energy_and_latency_positive(self):
        model = ComputeCostModel()
        flops = model.prediction_flops(128, (64,), 8)
        assert model.energy_pj(flops) > 0
        assert model.latency_seconds(flops) > 0


class TestPhaseTimeline:
    def test_clock_advances(self):
        tl = PhaseTimeline()
        tl.record(1000.0, 0.5)
        tl.record(2000.0, 0.25)
        assert tl.now == pytest.approx(0.75)

    def test_phase_energy_attribution(self):
        tl = PhaseTimeline()
        tl.begin_phase("train")
        tl.record(5000.0, 1.0)
        tl.begin_phase("write")
        tl.record(3000.0, 1.0)
        assert tl.total_energy_pj("train") == pytest.approx(5000.0)
        assert tl.total_energy_pj("write") == pytest.approx(3000.0)
        assert tl.total_energy_pj() == pytest.approx(8000.0)

    def test_phase_marks(self):
        tl = PhaseTimeline()
        tl.record(1.0, 1.0)
        tl.begin_phase("retrain")
        marks = tl.phase_marks()
        assert marks[0] == (0.0, "idle")
        assert marks[1] == (1.0, "retrain")

    def test_power_samples_conserve_energy(self):
        tl = PhaseTimeline()
        tl.record(1e12, 2.0)  # 1 J over 2 s -> 0.5 W average
        t, watts = tl.power_samples(interval_s=0.1)
        total_joules = float((watts * 0.1).sum())
        assert total_joules == pytest.approx(1.0, rel=1e-6)
        assert watts.max() == pytest.approx(0.5, rel=1e-6)

    def test_power_samples_empty(self):
        t, watts = PhaseTimeline().power_samples()
        assert t.size == 0 and watts.size == 0

    def test_zero_duration_events_fold_into_sample(self):
        tl = PhaseTimeline()
        tl.record(500.0, 0.0)
        t, watts = tl.power_samples(interval_s=0.001)
        assert watts.size == 1

    def test_validation(self):
        tl = PhaseTimeline()
        with pytest.raises(ValueError):
            tl.record(-1.0, 1.0)
        with pytest.raises(ValueError):
            tl.power_samples(0.0)
