"""Fault-injection harness tests (repro.testing.faults)."""

import time

import pytest

from repro.testing import CrashError, FaultError, FaultInjector


class TestArming:
    def test_unarmed_fire_is_noop_but_counted(self):
        faults = FaultInjector()
        faults.fire("anywhere")
        faults.fire("anywhere")
        assert faults.hits("anywhere") == 2
        assert faults.fired("anywhere") == 0
        assert not faults.armed("anywhere")

    def test_arm_requires_error_or_delay(self):
        faults = FaultInjector()
        with pytest.raises(ValueError):
            faults.arm("site")
        with pytest.raises(ValueError):
            faults.arm("site", error=FaultError, delay=-1.0)
        with pytest.raises(ValueError):
            faults.arm("site", error=FaultError, after=-1)
        with pytest.raises(ValueError):
            faults.arm("site", error=FaultError, times=0)

    def test_disarm_and_reset(self):
        faults = FaultInjector()
        faults.arm("site", error=FaultError)
        assert faults.armed("site")
        faults.disarm("site")
        assert not faults.armed("site")
        faults.fire("site")  # no raise
        faults.arm("site", error=FaultError)
        faults.reset()
        assert not faults.armed("site")
        assert faults.hits("site") == 0


class TestFiring:
    def test_error_class_is_instantiated(self):
        faults = FaultInjector()
        faults.arm("site", error=FaultError)
        with pytest.raises(FaultError, match="site"):
            faults.fire("site")

    def test_error_instance_is_raised_verbatim(self):
        faults = FaultInjector()
        boom = OSError("media gone")
        faults.arm("site", error=boom, times=None)
        with pytest.raises(OSError) as excinfo:
            faults.fire("site")
        assert excinfo.value is boom

    def test_times_bounds_the_firing(self):
        faults = FaultInjector()
        faults.arm("site", error=FaultError, times=2)
        for _ in range(2):
            with pytest.raises(FaultError):
                faults.fire("site")
        faults.fire("site")  # exhausted: passes through
        assert faults.fired("site") == 2
        assert faults.hits("site") == 3

    def test_after_skips_initial_hits(self):
        faults = FaultInjector()
        faults.arm("site", error=FaultError, after=2)
        faults.fire("site")
        faults.fire("site")
        with pytest.raises(FaultError):
            faults.fire("site")

    def test_delay_only_rule_sleeps(self):
        faults = FaultInjector()
        faults.arm("slow", delay=0.05)
        start = time.perf_counter()
        faults.fire("slow")  # slow but no error
        assert time.perf_counter() - start >= 0.05

    def test_injected_context_manager(self):
        faults = FaultInjector()
        with faults.injected("site", error=FaultError):
            with pytest.raises(FaultError):
                faults.fire("site")
        assert not faults.armed("site")
        faults.fire("site")  # disarmed on exit


class TestCrashAndTornWrites:
    def test_crash_error_escapes_except_exception(self):
        """CrashError must not be swallowed by ordinary cleanup handlers."""
        assert not issubclass(CrashError, Exception)
        faults = FaultInjector()
        faults.arm("site", error=CrashError)
        with pytest.raises(CrashError):
            try:
                faults.fire("site")
            except Exception:  # noqa: BLE001 - the point of the test
                pytest.fail("CrashError was caught as a plain Exception")

    def test_torn_fraction_validation(self):
        faults = FaultInjector()
        with pytest.raises(ValueError):
            faults.arm("site", error=CrashError, torn_fraction=-0.1)
        with pytest.raises(ValueError):
            faults.arm("site", error=CrashError, torn_fraction=1.5)

    def test_torn_write_persists_prefix_then_raises(self):
        faults = FaultInjector()
        rule = faults.arm("w", error=CrashError, torn_fraction=0.5)
        sink = bytearray(8)
        payload = b"ABCDEFGH"

        def writer(n):
            sink[:n] = payload[:n]

        with pytest.raises(CrashError):
            faults.fire("w", payload_len=len(payload), payload_writer=writer)
        assert bytes(sink) == b"ABCD\x00\x00\x00\x00"
        assert rule.torn_writes == 1

    def test_torn_fraction_zero_tears_nothing(self):
        faults = FaultInjector()
        rule = faults.arm("w", error=CrashError, torn_fraction=0.0)
        sink = bytearray(4)
        with pytest.raises(CrashError):
            faults.fire(
                "w",
                payload_len=4,
                payload_writer=lambda n: sink.__setitem__(
                    slice(0, n), b"XXXX"[:n]
                ),
            )
        assert bytes(sink) == b"\x00" * 4  # nothing persisted
        assert rule.torn_writes == 1

    def test_torn_rule_on_non_write_site_just_raises(self):
        """A site that passes no payload fires as a plain crash."""
        faults = FaultInjector()
        rule = faults.arm("site", error=CrashError, torn_fraction=0.5)
        with pytest.raises(CrashError):
            faults.fire("site")
        assert rule.torn_writes == 0
