"""Concurrency: the thread-safe structures under concurrent mutation.

§5.1: "We utilize thread-safe methods in E2-NVM ... for the data structures
that we utilize to maintain address pools and mapping."  These tests hammer
the DAP-backed engine from multiple threads and check conservation
invariants (no address double-allocated, none lost).
"""

import threading

from tests.conftest import make_engine


class TestConcurrentEngine:
    def test_parallel_place_release_conserves_addresses(self):
        engine = make_engine(seed=51)
        total = engine.dap.free_count()
        errors: list[Exception] = []
        claimed_sets: list[set] = [set() for _ in range(6)]

        def worker(slot: int) -> None:
            try:
                for i in range(40):
                    addr = engine.place(bytes([slot * 40 + i % 200]) * 64)
                    claimed_sets[slot].add(addr)
                    engine.release(addr)
                    claimed_sets[slot].discard(addr)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(slot,)) for slot in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert engine.dap.free_count() == total
        assert engine.allocated_count == 0

    def test_no_double_allocation_under_contention(self):
        engine = make_engine(seed=52)
        lock = threading.Lock()
        all_claimed: list[int] = []

        def worker() -> None:
            local = []
            for i in range(20):
                try:
                    addr = engine.place(bytes([i]) * 64)
                except RuntimeError:
                    break
                local.append(addr)
            with lock:
                all_claimed.extend(local)

        threads = [threading.Thread(target=worker) for _ in range(5)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(all_claimed) == len(set(all_claimed))
        assert len(all_claimed) + engine.dap.free_count() == 128

    def test_background_retrain_during_concurrent_writes(self):
        engine = make_engine(seed=53)
        stop = threading.Event()
        errors: list[Exception] = []

        def writer() -> None:
            i = 0
            try:
                while not stop.is_set() and i < 200:
                    addr = engine.place(bytes([i % 251]) * 64)
                    engine.release(addr)
                    i += 1
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        retrain_thread = engine.train_async()
        retrain_thread.join(timeout=120)
        stop.set()
        writer_thread.join(timeout=30)
        assert not errors
        assert not retrain_thread.is_alive()
        assert engine.dap.free_count() == 128
        assert engine.retrain_count == 1
