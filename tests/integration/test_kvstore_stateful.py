"""Hypothesis stateful model-checking of the KV store.

Two machines: the volatile store against a dict model, and the durable
store with a crash rule — random PUT/UPDATE/DELETE interleavings where a
crash can strike any fault site mid-PUT (torn writes included), the
process "dies", and the store is re-opened from the media and compared
against the model oracle of acknowledged operations.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.core import KVStore
from repro.testing import CrashError, FaultInjector
from repro.testing.crash_sweep import (
    DEFAULT_CRASH_SITES,
    KVCrashHarness,
    check_durable_invariants,
)
from tests.conftest import make_engine

KEYS = [b"key%02d" % i for i in range(12)]


class KVStoreMachine(RuleBasedStateMachine):
    """Random interleavings of put/get/delete/scan vs a dict model."""

    @initialize()
    def setup(self) -> None:
        self.store = KVStore(make_engine(seed=61))
        self.model: dict[bytes, bytes] = {}
        self._counter = 0

    @rule(key=st.sampled_from(KEYS), size=st.integers(1, 64))
    def put(self, key: bytes, size: int) -> None:
        self._counter += 1
        value = (b"%04d" % self._counter) * 16
        value = value[:size]
        self.store.put(key, value)
        self.model[key] = value

    @rule(key=st.sampled_from(KEYS))
    def get(self, key: bytes) -> None:
        assert self.store.get(key) == self.model.get(key)

    @rule(key=st.sampled_from(KEYS))
    def delete(self, key: bytes) -> None:
        assert self.store.delete(key) == (key in self.model)
        self.model.pop(key, None)

    @rule(lo=st.integers(0, 11), hi=st.integers(0, 11))
    def scan(self, lo: int, hi: int) -> None:
        lo, hi = min(lo, hi), max(lo, hi)
        got = self.store.scan(KEYS[lo], KEYS[hi])
        expected = sorted(
            (k, v) for k, v in self.model.items()
            if KEYS[lo] <= k <= KEYS[hi]
        )
        assert got == expected

    @invariant()
    def sizes_agree(self) -> None:
        if hasattr(self, "store"):
            assert len(self.store) == len(self.model)

    @invariant()
    def pool_conservation(self) -> None:
        if hasattr(self, "store"):
            engine = self.store.engine
            assert (
                engine.dap.free_count() + engine.allocated_count == 128
            )


TestKVStoreStateful = KVStoreMachine.TestCase
TestKVStoreStateful.settings = settings(
    max_examples=15, stateful_step_count=30, deadline=None
)


_HARNESS: KVCrashHarness | None = None


def _harness() -> KVCrashHarness:
    """One trained harness for every durable-machine example."""
    global _HARNESS
    if _HARNESS is None:
        _HARNESS = KVCrashHarness()
    return _HARNESS


class DurableKVStoreMachine(RuleBasedStateMachine):
    """Durable store vs a dict oracle, with crash-and-reopen as a rule.

    The oracle records an operation only when the call returns (the
    acknowledgement), so after every crash + recovery the recovered store
    must equal it exactly.
    """

    @initialize()
    def setup(self) -> None:
        self.faults = FaultInjector()
        h = _harness()
        self.device, _, self.store = h.fresh(self.faults)
        self.model: dict[bytes, bytes] = {}
        self._counter = 0

    def _value(self, size: int) -> bytes:
        self._counter += 1
        return ((b"%04d" % self._counter) * 16)[:size]

    @rule(key=st.sampled_from(KEYS), size=st.integers(1, 64))
    def put(self, key: bytes, size: int) -> None:
        value = self._value(size)
        self.store.put(key, value)
        self.model[key] = value

    @rule(key=st.sampled_from(KEYS))
    def get(self, key: bytes) -> None:
        assert self.store.get(key) == self.model.get(key)

    @rule(key=st.sampled_from(KEYS))
    def delete(self, key: bytes) -> None:
        assert self.store.delete(key) == (key in self.model)
        self.model.pop(key, None)

    @rule(
        key=st.sampled_from(KEYS),
        size=st.integers(1, 64),
        site=st.sampled_from(DEFAULT_CRASH_SITES),
        skip=st.integers(0, 2),
        torn=st.none() | st.floats(0.0, 1.0),
    )
    def crash_during_put(self, key, size, site, skip, torn) -> None:
        """Arm a random crash point, attempt a PUT, die, reopen, compare."""
        self.faults.arm(
            site, error=CrashError, after=skip, times=1, torn_fraction=torn
        )
        value = self._value(size)
        crashed = False
        try:
            self.store.put(key, value)
            self.model[key] = value  # survived (site fired late or never)
        except CrashError:
            crashed = True
        finally:
            self.faults.disarm(site)
        if crashed:
            del self.store  # process death
            h = _harness()
            self.store = h.reopen(self.device)
            check_durable_invariants(self.store, self.model)
            # Re-attach injection for the rules that follow.
            self.device.faults = self.faults
            self.store.pool.faults = self.faults
            self.store.engine.faults = self.faults

    @precondition(lambda self: hasattr(self, "store"))
    @invariant()
    def store_matches_oracle(self) -> None:
        assert dict(self.store.items()) == self.model

    @precondition(lambda self: hasattr(self, "store"))
    @invariant()
    def pool_is_conserved(self) -> None:
        pool = self.store.pool
        free = set(pool.free_addresses())
        assert len(free) + len(pool.allocated_addresses()) == (
            pool.capacity_objects
        )
        assert set(self.store.engine.free_addresses()) == free


TestDurableKVStoreStateful = DurableKVStoreMachine.TestCase
TestDurableKVStoreStateful.settings = settings(
    max_examples=10, stateful_step_count=25, deadline=None
)
