"""Hypothesis stateful model-checking of the KV store."""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.core import KVStore
from tests.conftest import make_engine

KEYS = [b"key%02d" % i for i in range(12)]


class KVStoreMachine(RuleBasedStateMachine):
    """Random interleavings of put/get/delete/scan vs a dict model."""

    @initialize()
    def setup(self) -> None:
        self.store = KVStore(make_engine(seed=61))
        self.model: dict[bytes, bytes] = {}
        self._counter = 0

    @rule(key=st.sampled_from(KEYS), size=st.integers(1, 64))
    def put(self, key: bytes, size: int) -> None:
        self._counter += 1
        value = (b"%04d" % self._counter) * 16
        value = value[:size]
        self.store.put(key, value)
        self.model[key] = value

    @rule(key=st.sampled_from(KEYS))
    def get(self, key: bytes) -> None:
        assert self.store.get(key) == self.model.get(key)

    @rule(key=st.sampled_from(KEYS))
    def delete(self, key: bytes) -> None:
        assert self.store.delete(key) == (key in self.model)
        self.model.pop(key, None)

    @rule(lo=st.integers(0, 11), hi=st.integers(0, 11))
    def scan(self, lo: int, hi: int) -> None:
        lo, hi = min(lo, hi), max(lo, hi)
        got = self.store.scan(KEYS[lo], KEYS[hi])
        expected = sorted(
            (k, v) for k, v in self.model.items()
            if KEYS[lo] <= k <= KEYS[hi]
        )
        assert got == expected

    @invariant()
    def sizes_agree(self) -> None:
        if hasattr(self, "store"):
            assert len(self.store) == len(self.model)

    @invariant()
    def pool_conservation(self) -> None:
        if hasattr(self, "store"):
            engine = self.store.engine
            assert (
                engine.dap.free_count() + engine.allocated_count == 128
            )


TestKVStoreStateful = KVStoreMachine.TestCase
TestKVStoreStateful.settings = settings(
    max_examples=15, stateful_step_count=30, deadline=None
)
