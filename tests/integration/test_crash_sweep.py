"""Exhaustive crash-point sweeps over the durable KV store.

Tier 1 runs a small-but-complete sweep (every fired site, torn variants
included).  The ``crash``-marked test is the acceptance sweep — a seeded
YCSB-style trace of 200+ operations crashed at every fired device-write
and transaction-boundary site — and runs in CI's dedicated crash-sweep
job (``pytest -m crash``).
"""

import pytest

from repro.nvm import DriftConfig
from repro.testing import (
    DEFAULT_CRASH_SITES,
    DEFAULT_TORN_SITES,
    DRIFT_CRASH_SITES,
    GC_CRASH_SITES,
    WEAROUT_CRASH_SITES,
    KVCrashHarness,
    make_ycsb_trace,
    run_crash_sweep,
    weave_aging,
)


@pytest.fixture(scope="module")
def harness():
    return KVCrashHarness()


@pytest.fixture(scope="module")
def drift_harness():
    """Stores on drifting media with a synchronous scrubber attached."""
    return KVCrashHarness(
        n_segments=48,
        segment_size=64,
        seed=7,
        drift=DriftConfig(retention_mean=8, retention_sigma=0.3, seed=3),
    )


def test_small_sweep_every_point_recovers(harness):
    trace = make_ycsb_trace(30, n_keys=8, value_size=64, seed=3)
    report = run_crash_sweep(harness, trace)
    assert report.passed, report.failures[:5]
    # Every instrumented site was actually reached and crashed at — except
    # the wear-out, drift and GC sites, which an immortal, drift-free
    # device with no compactor can never fire.
    for site in DEFAULT_CRASH_SITES:
        if (
            site in WEAROUT_CRASH_SITES
            or site in DRIFT_CRASH_SITES
            or site in GC_CRASH_SITES
        ):
            assert report.site_hits[site] == 0, site
        else:
            assert report.site_hits[site] > 0, site
    assert report.crash_points == sum(report.site_hits.values()) + sum(
        report.site_hits[s] for s in DEFAULT_TORN_SITES
    )
    assert report.torn_points > 0
    assert report.clean_replays == 0


def test_trace_generator_is_deterministic():
    assert make_ycsb_trace(25, seed=9) == make_ycsb_trace(25, seed=9)
    assert make_ycsb_trace(25, seed=9) != make_ycsb_trace(25, seed=10)


def test_trace_mix_validation():
    with pytest.raises(ValueError, match="sum to 1"):
        make_ycsb_trace(10, mix=(0.5, 0.5, 0.5))


def test_small_drift_sweep_recovers(drift_harness):
    """Crashes mid-drift, mid-scrub-refresh and at every write/tx point of
    an aged workload all recover to the acknowledged state."""
    trace = weave_aging(
        make_ycsb_trace(16, n_keys=5, value_size=48, seed=3),
        age_every=4,
        age_ticks=3,
        scrub_every=8,
    )
    report = run_crash_sweep(drift_harness, trace)
    assert report.passed, report.failures[:5]
    for site in DRIFT_CRASH_SITES:
        assert report.site_hits[site] > 0, f"{site} never fired"


@pytest.mark.scrub
def test_drift_scrub_sweep_acceptance(drift_harness):
    """Acceptance criterion: an aged, scrubbed workload crashed at every
    fired site — drift flips, scrub refreshes, torn log/value writes —
    recovers to exactly the acknowledged state at all of them."""
    trace = weave_aging(
        make_ycsb_trace(60, n_keys=8, value_size=48, seed=11),
        age_every=4,
        age_ticks=3,
        scrub_every=6,
    )
    report = run_crash_sweep(drift_harness, trace)
    assert report.passed, (
        f"{len(report.failures)} of {report.crash_points} crash points "
        f"failed; first: {report.failures[:3]}"
    )
    for site in DRIFT_CRASH_SITES:
        assert report.site_hits[site] > 0, f"{site} never fired"
    assert report.torn_points > 0


@pytest.mark.crash
def test_exhaustive_sweep_acceptance(harness):
    """Acceptance criterion: >=200 ops, a crash at every fired
    device.write / tx.* site, torn-write variants included — and every
    single crash point recovers to exactly the acknowledged state."""
    trace = make_ycsb_trace(200, n_keys=10, value_size=64, seed=11)
    report = run_crash_sweep(harness, trace)
    assert report.passed, (
        f"{len(report.failures)} of {report.crash_points} crash points "
        f"failed; first: {report.failures[:3]}"
    )
    assert report.ops >= 200
    assert report.crash_points > 1000
    assert report.torn_points > 300
