"""End-to-end endurance exhaustion: accelerated aging, protected vs
unprotected stores, degraded mode and wear-leveling crash safety.

Tier 1 runs the accelerated-aging acceptance pair — a verify-protected
store stays *correct* until it degrades to read-only with a dedicated
error, an unprotected one raises ``CorruptValueError`` on the damage its
unverified writes let through (never silent garbage) — plus compact
wear-leveling sweeps.  The ``endurance``-marked organic-wear run and the
``crash``-marked wear-out sweep are CI's dedicated heavy jobs.
"""

import numpy as np
import pytest

from repro.core.kvstore import CorruptValueError, KVStore, StoreReadOnlyError
from repro.nvm import MemoryController, NVMDevice, WearOutConfig
from repro.pmem.pool import PersistentPool
from repro.testing import (
    FaultInjector,
    KVCrashHarness,
    make_ycsb_trace,
    run_crash_sweep,
    run_wear_leveling_crash_sweep,
)

WEAROUT = WearOutConfig(
    endurance_mean=12, endurance_sigma=0.3, seed=5, ecp_entries=8
)


@pytest.fixture(scope="module")
def worn_harness():
    """Store builder over a mortal device; the reserved log/catalog prefix
    is made immortal by the harness (real deployments over-provision it)."""
    return KVCrashHarness(
        n_segments=32, segment_size=64, seed=7, wearout=WEAROUT, spares=2
    )


def hammer_until_read_only(store, oracle=None, *, n_keys=6, max_ops=1500,
                           seed=3):
    """PUT random values round-robin, checking *every* GET against the
    oracle after each acknowledgement, until the store degrades."""
    rng = np.random.default_rng(seed)
    oracle = {} if oracle is None else oracle
    for i in range(max_ops):
        key = b"key-%d" % (i % n_keys)
        value = rng.integers(0, 256, size=48, dtype=np.uint8).tobytes()
        try:
            store.put(key, value)
        except StoreReadOnlyError:
            return oracle, i
        oracle[key] = value
        for k, v in oracle.items():
            assert store.get(k) == v, f"corrupt read of {k!r} after op {i}"
    raise AssertionError("store never degraded to read-only")


class TestProtectedStore:
    def test_aged_store_correct_until_read_only(self, worn_harness):
        device, _, store = worn_harness.fresh(FaultInjector())
        rng = np.random.default_rng(1)
        seeded = {}
        for i in range(4):
            value = rng.integers(0, 256, 48, dtype=np.uint8).tobytes()
            store.put(b"seed-%d" % i, value)
            seeded[b"seed-%d" % i] = value
        device.age(6)  # accelerated aging: most budgets nearly exhausted

        oracle, ops = hammer_until_read_only(store, seeded)
        assert ops > 0

        # Degradation is explicit and sticky: reads still served, writes
        # refused with the dedicated error.
        assert store.read_only
        with pytest.raises(StoreReadOnlyError):
            store.put(b"more", b"x" * 8)
        with pytest.raises(StoreReadOnlyError):
            store.delete(next(iter(oracle)))
        for k, v in oracle.items():
            assert store.get(k) == v

        telemetry = store.engine.health.telemetry()
        assert telemetry["stuck_cells"] > 0
        assert telemetry["segments_retired"] > 0
        assert telemetry["spares_left"] == 0
        assert telemetry["usable_capacity_fraction"] < 1.0

        # A restart rebuilds the same contents from the worn media; the
        # pool is still exhausted, so the first write re-degrades.
        recovered = worn_harness.reopen(device)
        assert dict(recovered.items()) == dict(store.items())
        with pytest.raises(StoreReadOnlyError):
            recovered.put(b"more", b"x" * 8)

    @pytest.mark.endurance
    def test_organic_wear_correct_until_read_only(self, worn_harness):
        """No aging shortcut: every GET stays correct over the device's
        whole organic lifetime, then the store degrades cleanly."""
        device, _, store = worn_harness.fresh(FaultInjector())
        oracle, ops = hammer_until_read_only(store, max_ops=5000)
        assert ops > 50  # a mortal-but-useful device, not dead on arrival
        assert store.read_only
        for k, v in oracle.items():
            assert store.get(k) == v
        assert device.stuck_cell_count() > 0


class TestUnprotectedStore:
    def test_unprotected_store_detects_corrupt_reads(self, worn_harness):
        """The corrupt-read baseline: same mortal media, verification off
        — writes silently fail on stuck cells.  Since the catalog grew a
        value CRC, GET *detects* the damage and raises
        :class:`CorruptValueError` instead of returning garbage: silent
        wrong bytes are impossible even on an unprotected store."""
        h = worn_harness
        device = NVMDevice(
            capacity_bytes=h.n_segments * h.segment_size,
            segment_size=h.segment_size,
            initial_fill="random",
            seed=h.seed,
            wearout=h.wearout,
        )
        pool = PersistentPool(
            MemoryController(device, verify_writes=False),
            log_segments=h.log_segments,
            meta_segments=h.meta_segments,
        )
        store = KVStore.create(
            pool,
            config=h.config,
            key_capacity=h.key_capacity,
            pipeline=h.pipeline,
        )
        rng = np.random.default_rng(2)
        keys = [b"victim-%d" % i for i in range(4)]
        for key in keys:
            store.put(key, rng.integers(0, 256, 48, dtype=np.uint8).tobytes())

        device.age(10**6)  # every data cell is now stuck

        detected = 0
        for key in keys:
            value = rng.integers(0, 256, 48, dtype=np.uint8).tobytes()
            store.put(key, value)  # acknowledged without complaint
            try:
                got = store.get(key)
            except CorruptValueError:
                detected += 1
            else:
                # A read that *does* come back must be the right bytes —
                # never silently wrong ones.
                assert got == value
        assert detected > 0, "unprotected store never detected corruption"
        assert store.corrupt_reads_detected >= detected
        assert not store.read_only  # it does not even know it is dying


class TestWearLevelingCrashSafety:
    def test_scratch_swap_sweep_passes(self):
        report = run_wear_leveling_crash_sweep(
            "swap-scratch", n_segments=8, n_writes=24, period=2
        )
        assert report.passed, report.failures[:3]
        assert report.crash_points > 0 and report.torn_points > 0

    def test_start_gap_sweep_passes(self):
        report = run_wear_leveling_crash_sweep(
            "start-gap", n_segments=8, n_writes=24, period=2
        )
        assert report.passed, report.failures[:3]
        assert report.crash_points > 0 and report.torn_points > 0

    def test_legacy_swap_is_torn_write_unsafe(self):
        """The legacy in-place exchange demonstrably loses committed data
        when a mid-swap program tears — the reason it is not the default."""
        report = run_wear_leveling_crash_sweep(
            "swap-legacy", n_segments=8, n_writes=24, period=2
        )
        assert not report.passed
        assert all("+torn" in failure for failure in report.failures)
        assert any("committed data" in failure for failure in report.failures)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            run_wear_leveling_crash_sweep("bogus")


@pytest.mark.crash
def test_wearout_crash_sweep_acceptance():
    """Crash-durability holds on a dying device: every crash point across
    the wear sites (stuck-at, retirement, relocation) recovers to exactly
    the acknowledged state."""
    wearout = WearOutConfig(
        endurance_mean=5, endurance_sigma=0.6, seed=5, ecp_entries=1
    )
    harness = KVCrashHarness(
        n_segments=40, segment_size=64, seed=7, wearout=wearout, spares=4
    )
    trace = make_ycsb_trace(
        70, n_keys=6, value_size=48, seed=3, mix=(0.7, 0.15, 0.15)
    )
    report = run_crash_sweep(harness, trace)
    assert report.passed, (
        f"{len(report.failures)} of {report.crash_points} crash points "
        f"failed; first: {report.failures[:3]}"
    )
    for site in ("device.stuck_at", "health.retire", "health.relocate"):
        assert report.site_hits[site] > 0, f"{site} never fired"
