"""Fast mini-versions of the headline figure shapes, inside the unit suite.

The full sweeps live in benchmarks/; these distilled versions keep the
paper's core claims under plain ``pytest tests/`` protection.
"""

import numpy as np

from repro.baselines import DCW, ArbitraryPlacer, NaiveWrite
from repro.core import E2NVM
from repro.core.config import fast_test_config
from repro.nvm import MemoryController, NVMDevice, SegmentSwapWearLeveling
from repro.pmem import PersistentPool
from repro.workloads.datasets import bits_to_values, make_image_dataset


class TestFigure1Shape:
    def test_energy_monotone_in_overwrite_difference(self):
        """The Figure 1 sweep, 3 points: identical < half < all-different."""
        energies = []
        for fraction in (0.0, 0.5, 1.0):
            device = NVMDevice(
                capacity_bytes=10 * 256, segment_size=256, initial_fill="zero"
            )
            pool = PersistentPool(MemoryController(device), log_segments=2)
            rng = np.random.default_rng(1)
            addr = pool.alloc()
            old = rng.integers(0, 256, 256, dtype=np.uint8)
            pool.write(addr, old.tobytes())
            device.reset_stats()
            bits = np.unpackbits(old)
            n_flip = int(bits.size * fraction)
            flip_at = rng.choice(bits.size, size=n_flip, replace=False)
            bits[flip_at] ^= 1
            with pool.transaction() as tx:
                tx.write(addr, np.packbits(bits).tobytes())
            energies.append(device.stats.write_energy_pj)
        assert energies[0] < energies[1] < energies[2]
        saving = 1.0 - energies[0] / energies[2]
        assert saving > 0.4


class TestFigure2Shape:
    def test_swap_period_one_erases_placement_benefit(self):
        bits, _ = make_image_dataset(200, 512, n_classes=4, noise=0.06, seed=2)
        values = bits_to_values(bits)
        seed_values, stream = values[:96], values[96:150]

        def run(psi):
            device = NVMDevice(
                capacity_bytes=96 * 64, segment_size=64,
                initial_fill="random", seed=2,
            )
            wear = SegmentSwapWearLeveling(period=psi, seed=2)
            controller = MemoryController(device, wear_leveling=wear)
            for i, v in enumerate(seed_values):
                controller.write(i * 64, v)
            device.reset_stats()
            engine = E2NVM(controller, fast_test_config(n_clusters=4, seed=2))
            engine.train()
            for v in stream:
                addr, _ = engine.write(v)
                engine.release(addr)
            return device.stats.bits_programmed / len(stream)

        assert run(1) > 2 * run(50)


class TestFigure10Shape:
    def test_e2nvm_beats_rbw_on_clustered_content(self):
        bits, _ = make_image_dataset(260, 512, n_classes=4, noise=0.06, seed=3)
        values = bits_to_values(bits)
        seed_values, stream = values[:128], values[128:200]

        def seeded(scheme=None):
            device = NVMDevice(
                capacity_bytes=128 * 64, segment_size=64,
                initial_fill="random", seed=3,
            )
            controller = MemoryController(device, scheme=scheme)
            for i, v in enumerate(seed_values):
                controller.write(i * 64, v)
            device.reset_stats()
            return controller, device

        controller, device = seeded()
        engine = E2NVM(controller, fast_test_config(n_clusters=4, seed=3))
        engine.train()
        for v in stream:
            addr, _ = engine.write(v)
            engine.release(addr)
        e2 = device.stats.bits_programmed

        controller, device = seeded(scheme=DCW())
        placer = ArbitraryPlacer([i * 64 for i in range(128)])
        for v in stream:
            addr = placer.choose(None)
            controller.write(addr, v)
            placer.release(addr, None)
        dcw = device.stats.bits_programmed

        controller, device = seeded(scheme=NaiveWrite())
        placer = ArbitraryPlacer([i * 64 for i in range(128)])
        for v in stream:
            addr = placer.choose(None)
            controller.write(addr, v)
            placer.release(addr, None)
        naive = device.stats.bits_programmed

        assert e2 < 0.6 * dcw
        assert dcw < naive


class TestFigure19Shape:
    def test_writes_spread_across_the_zone(self):
        bits, _ = make_image_dataset(400, 512, n_classes=4, noise=0.06, seed=4)
        values = bits_to_values(bits)
        device = NVMDevice(
            capacity_bytes=96 * 64, segment_size=64, initial_fill="zero"
        )
        controller = MemoryController(device)
        for i, v in enumerate(values[:96]):
            controller.write(i * 64, v)
        device.reset_stats()
        device.segment_write_count[:] = 0
        engine = E2NVM(controller, fast_test_config(n_clusters=4, seed=4))
        engine.train()
        live = []
        for v in values[96:96 + 192]:
            addr, _ = engine.write(v)
            live.append(addr)
            if len(live) > 24:
                engine.release(live.pop(0))
        writes = device.segment_write_count
        assert writes.max() <= 8 * max(writes.mean(), 1)
