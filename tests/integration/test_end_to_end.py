"""End-to-end integration: the full stack under realistic flows."""

import pytest

from repro.core import E2NVM, KVStore
from repro.core.config import fast_test_config
from repro.index import BPlusTree, PluggedValues
from repro.nvm import (
    MemoryController,
    NVMDevice,
    SegmentSwapWearLeveling,
)
from repro.workloads.datasets import bits_to_values, make_image_dataset
from repro.workloads.ycsb import WORKLOADS, YCSBWorkload


def clustered_engine(seed=0, n_segments=128, segment=64, **cfg):
    bits, _ = make_image_dataset(
        n_segments, segment * 8, n_classes=4, noise=0.06, seed=seed
    )
    device = NVMDevice(
        capacity_bytes=n_segments * segment, segment_size=segment,
        initial_fill="zero",
    )
    controller = MemoryController(device)
    for i, value in enumerate(bits_to_values(bits)):
        controller.write(i * segment, value)
    device.reset_stats()
    engine = E2NVM(controller, fast_test_config(n_clusters=4, seed=seed, **cfg))
    engine.train()
    return engine, device


class TestKVStoreUnderYCSB:
    def test_workload_a_consistency(self):
        engine, _ = clustered_engine(seed=1, n_segments=256)
        store = KVStore(engine)
        workload = YCSBWorkload(
            WORKLOADS["A"], record_count=60, operation_count=300,
            value_size=48, seed=1,
        )
        model = {}
        for key, value in workload.load_phase():
            store.put(key, value)
            model[key] = value
        for op in workload.operations():
            if op[0] == "read":
                assert store.get(op[1]) == model.get(op[1])
            else:
                store.put(op[1], op[2])
                model[op[1]] = op[2]
        assert len(store) == len(model)

    def test_workload_e_scans(self):
        engine, _ = clustered_engine(seed=2, n_segments=256)
        store = KVStore(engine)
        workload = YCSBWorkload(
            WORKLOADS["E"], record_count=50, operation_count=100,
            value_size=32, seed=2,
        )
        for key, value in workload.load_phase():
            store.put(key, value)
        for op in workload.operations():
            if op[0] == "scan":
                results = store.scan(op[1], op[1] + b"\xff")
                assert all(k >= op[1] for k, _ in results)
            elif op[0] == "insert":
                store.put(op[1], op[2])


class TestStackComposition:
    def test_engine_over_wear_leveled_controller(self):
        """E2-NVM above a swapping controller still round-trips data."""
        device = NVMDevice(
            capacity_bytes=128 * 64, segment_size=64,
            initial_fill="random", seed=3,
        )
        controller = MemoryController(
            device, wear_leveling=SegmentSwapWearLeveling(period=5, seed=3)
        )
        engine = E2NVM(controller, fast_test_config(seed=3))
        engine.train()
        store = KVStore(engine)
        for i in range(60):
            store.put(b"k%02d" % (i % 30), b"value-%04d" % i)
        for i in range(30):
            expected = b"value-%04d" % (30 + i)
            assert store.get(b"k%02d" % i) == expected

    def test_btree_plugged_into_engine_full_flow(self):
        engine, _ = clustered_engine(seed=4, n_segments=256)
        index_device = NVMDevice(
            capacity_bytes=256 * 256, segment_size=256,
            initial_fill="random", seed=4,
        )
        tree = BPlusTree(
            MemoryController(index_device), values=PluggedValues(engine)
        )
        payload = bits_to_values(
            make_image_dataset(100, 512, n_classes=4, noise=0.06, seed=4)[0]
        )
        for i, value in enumerate(payload):
            tree.put(b"key%03d" % (i % 40), value)
        # Every key readable; engine and index agree on liveness.
        live = {b"key%03d" % (i % 40) for i in range(100)}
        for key in live:
            assert tree.get(key) is not None
        assert engine.allocated_count == len(live)

    def test_retrain_mid_workload_preserves_store(self):
        engine, _ = clustered_engine(seed=5, n_segments=256)
        store = KVStore(engine)
        for i in range(40):
            store.put(b"key%02d" % i, b"v%02d" % i)
        engine.train()  # synchronous retrain with live data
        for i in range(40):
            assert store.get(b"key%02d" % i) == b"v%02d" % i
        store.put(b"new", b"after-retrain")
        assert store.get(b"new") == b"after-retrain"


class TestFailureInjection:
    def test_pool_exhaustion_is_clean(self):
        engine, _ = clustered_engine(seed=6, n_segments=128)
        store = KVStore(engine)
        for i in range(128):
            store.put(b"key%03d" % i, b"x" * 16)
        with pytest.raises(RuntimeError):
            store.put(b"overflow", b"y")
        # The store is still readable after the failed insert.
        assert store.get(b"key000") == b"x" * 16

    def test_delete_everything_then_reuse(self):
        engine, _ = clustered_engine(seed=7, n_segments=128)
        store = KVStore(engine)
        for round_idx in range(3):
            for i in range(100):
                store.put(b"k%03d" % i, bytes([round_idx]) * 24)
            for i in range(100):
                assert store.delete(b"k%03d" % i)
            assert engine.dap.free_count() == 128

    def test_oversized_write_does_not_leak_pool_entries(self):
        engine, _ = clustered_engine(seed=8)
        free_before = engine.dap.free_count()
        with pytest.raises(ValueError):
            engine.write(b"z" * 65)
        assert engine.dap.free_count() == free_before


class TestEnergyAccountingConsistency:
    def test_stats_add_up_across_components(self):
        engine, device = clustered_engine(seed=9)
        store = KVStore(engine)
        for i in range(30):
            store.put(b"key%02d" % i, b"payload-%02d" % i)
        stats = device.stats
        assert stats.writes >= 30
        assert stats.write_energy_pj > 0
        assert stats.bits_flipped <= stats.bits_programmed
        # Per-write energy is at least the static command cost.
        assert (
            stats.write_energy_pj / stats.writes
            >= device.energy_model.static_write_energy_pj
        )

    def test_flip_reduction_vs_naive_end_to_end(self):
        """The whole point, end to end: E2-NVM + DCW programs far fewer
        bits than a naive controller with arbitrary placement."""
        from repro.baselines import NaiveWrite

        engine, device = clustered_engine(seed=10, n_segments=256)
        store = KVStore(engine)
        bits, _ = make_image_dataset(150, 512, n_classes=4, noise=0.06, seed=10)
        for i, value in enumerate(bits_to_values(bits)):
            store.put(b"k%03d" % (i % 50), value)
        smart_bits = device.stats.bits_programmed

        naive_device = NVMDevice(
            capacity_bytes=256 * 64, segment_size=64, initial_fill="zero"
        )
        naive_controller = MemoryController(naive_device, scheme=NaiveWrite())
        for i, value in enumerate(bits_to_values(bits)):
            naive_controller.write((i % 256) * 64, value)
        naive_bits = naive_device.stats.bits_programmed

        assert smart_bits < 0.3 * naive_bits
