"""Capacity reclamation under crash fire: GC-site sweeps, compaction
content-neutrality and recovery-time reclaim replay.

Tier 1 runs a small sweep restricted to the GC sites
(``compact.migrate``, ``compact.reclaim``, ``wl.swap``) with the offline
checker run on the crashed media at every point, plus the Hypothesis
twin test (compaction on vs off must be invisible in contents).  The
``gc``-marked test is the acceptance sweep — every fired site, torn
variants included, fsck clean at every crash point — and runs in CI's
dedicated ``gc`` job (``pytest -m gc``).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kvstore import StoreReadOnlyError
from repro.nvm import WearOutConfig
from repro.testing import (
    GC_CRASH_SITES,
    FaultInjector,
    KVCrashHarness,
    make_ycsb_trace,
    run_crash_sweep,
    weave_compaction,
)

#: Mortal enough that segments hit ECP capacity and retire mid-trace —
#: firing the whole reclamation path — but long-lived enough that the DAP
#: keeps free segments for wear-leveling swap targets.
WEAROUT = WearOutConfig(
    endurance_mean=10, endurance_sigma=0.5, seed=5, ecp_entries=1
)


@pytest.fixture(scope="module")
def gc_harness():
    """Stores on dying media with a synchronous compactor attached."""
    return KVCrashHarness(
        n_segments=40, segment_size=64, seed=7, wearout=WEAROUT, spares=4,
        gc=True,
    )


def _gc_trace(n_ops=60):
    return weave_compaction(
        make_ycsb_trace(
            n_ops, n_keys=8, value_size=48, seed=3, mix=(0.7, 0.15, 0.15)
        ),
        compact_every=4,
    )


def test_small_gc_sweep_every_point_recovers(gc_harness):
    """Crashes at every migration write point, reclaim transition and
    wear-leveling swap recover to the acknowledged state, and the crashed
    media passes the offline checker at every point."""
    report = run_crash_sweep(
        gc_harness, _gc_trace(), sites=GC_CRASH_SITES, torn_sites=(),
        check_fsck=True,
    )
    assert report.passed, report.failures[:5]
    for site in GC_CRASH_SITES:
        assert report.site_hits[site] > 0, f"{site} never fired"


def test_recovery_reclaims_drained_retiring_segments(gc_harness):
    """A retiring segment left drained on the media (the crash landed
    before the reclaim metadata write) is folded into the spares pool by
    recovery — the replay that makes ``compact.reclaim`` idempotent."""
    faults = FaultInjector()
    device, _, store = gc_harness.fresh(faults)
    store.put(b"user001", b"x" * 32)
    # Strand a drained retiring segment: health says retiring, but no
    # live catalog record occupies it (exactly the pre-reclaim window).
    free_addr = store.engine.dap.snapshot_addresses()[0]
    seg = free_addr // 64
    device.health.retiring.add(seg)
    del store

    recovered = gc_harness.reopen(device)
    assert recovered.recovery.reclaimed_segments == 1
    health = recovered.engine.health
    assert health.is_reclaimed(seg)
    assert free_addr in health.state.spares
    assert recovered.get(b"user001") == b"x" * 32


def test_reclaimed_capacity_defers_read_only(gc_harness):
    """A store whose free pool is exhausted adopts reclaimed spare-class
    capacity instead of degrading to read-only."""
    device, _, store = gc_harness.fresh(FaultInjector())
    health = store.engine.health
    # Drain the entire free pool into quarantine so the next placement
    # would otherwise exhaust the DAP...
    store.put(b"user001", b"x" * 32)
    while store.engine.adopt_spare() is not None:
        pass  # reserved spares must not mask the reclamation path
    for addr in store.engine.dap.snapshot_addresses():
        store.engine.quarantine_address(addr)
    # ...but leave one drained retiring segment for _reclaim_stranded to
    # fold back in (stranded: never recycled through a PUT/DELETE).
    quarantined = sorted(store.engine.dap.quarantined())[0]
    health.state.retiring.add(quarantined // 64)

    store.put(b"user002", b"y" * 32)  # reclaim + adopt, not read-only
    assert not store.read_only
    assert store.get(b"user002") == b"y" * 32
    assert health.reclaimed_total >= 1


_KEYS = [b"twin%02d" % i for i in range(6)]


@settings(max_examples=15, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(_KEYS),
            st.integers(1, 48),
            st.booleans(),
        ),
        min_size=1,
        max_size=30,
    ),
    compact_every=st.integers(1, 6),
)
def test_compaction_twin_is_content_neutral(gc_harness, ops, compact_every):
    """Twin property: the same operation sequence applied with and
    without interleaved compaction rounds yields identical store
    contents — compaction and wear leveling only move bytes, never
    change them."""

    def run(with_compaction):
        _, _, store = gc_harness.fresh(FaultInjector())
        oracle = {}
        for i, (key, size, is_put) in enumerate(ops, 1):
            value = (b"%02d" % (i % 100)) * 24
            try:
                if is_put:
                    store.put(key, value[:size])
                    oracle[key] = value[:size]
                else:
                    store.delete(key)
                    oracle.pop(key, None)
            except StoreReadOnlyError:
                return None, None
            if with_compaction and i % compact_every == 0:
                store.compactor.compact_round()
        return dict(store.items()), oracle

    with_items, with_oracle = run(True)
    without_items, without_oracle = run(False)
    if with_items is None or without_items is None:
        return  # the device died mid-sequence; neutrality is moot
    assert with_items == with_oracle
    assert without_items == without_oracle
    assert with_items == without_items


@pytest.mark.gc
def test_gc_sweep_acceptance(gc_harness):
    """Acceptance criterion: a compacting, wear-leveling workload on
    dying media crashed at every fired site — GC sites, wear sites, torn
    log/value writes — recovers to exactly the acknowledged state, and
    the crashed media passes fsck (zero errors) at every single point."""
    report = run_crash_sweep(gc_harness, _gc_trace(), check_fsck=True)
    assert report.passed, (
        f"{len(report.failures)} of {report.crash_points} crash points "
        f"failed; first: {report.failures[:3]}"
    )
    for site in GC_CRASH_SITES:
        assert report.site_hits[site] > 0, f"{site} never fired"
    assert report.torn_points > 0
