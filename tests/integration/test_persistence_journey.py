"""The full restart journey: device snapshot + model snapshot + rebuild.

A production deployment survives restarts by persisting three things: the
NVM media itself (non-volatile by definition — modelled by the device
snapshot), the trained placement model, and the application's key index
(recovered from its own durable metadata; rebuilt here from a sidecar
listing).  This test walks the whole journey.
"""

import numpy as np

from repro.core import E2NVM, KVStore
from repro.core.config import fast_test_config
from repro.ml.serialization import load_joint, save_joint
from repro.nvm import MemoryController, NVMDevice
from repro.workloads.datasets import bits_to_values, make_image_dataset


class TestPersistenceJourney:
    def test_restart_preserves_store_and_model(self, tmp_path):
        # --- session 1: build, train, write, snapshot -------------------
        bits, _ = make_image_dataset(160, 512, n_classes=4, noise=0.06, seed=70)
        device = NVMDevice(
            capacity_bytes=160 * 64, segment_size=64, initial_fill="zero"
        )
        controller = MemoryController(device)
        for i, value in enumerate(bits_to_values(bits)):
            controller.write(i * 64, value)
        engine = E2NVM(controller, fast_test_config(n_clusters=4, seed=70))
        store = KVStore(engine)
        store.train()
        contents = {}
        for i in range(40):
            key = b"key%02d" % i
            value = b"payload-%02d" % i
            store.put(key, value)
            contents[key] = value
        # Durable state: media snapshot + model snapshot + index sidecar.
        device.save(tmp_path / "media.npz")
        save_joint(engine.pipeline.model, tmp_path / "model.npz")
        sidecar = {key: store.index.get(key) for key in contents}

        # --- session 2: restart from the snapshots -----------------------
        device2 = NVMDevice.load(tmp_path / "media.npz")
        controller2 = MemoryController(device2)
        engine2 = E2NVM(controller2, fast_test_config(n_clusters=4, seed=70))
        # Restore the trained model instead of retraining.
        engine2.pipeline.model = load_joint(tmp_path / "model.npz")
        engine2.pipeline.trained = True
        # Re-register live segments, then rebuild the free pool.
        live_addrs = {addr for addr, _ in sidecar.values()}
        engine2._allocated = set(live_addrs)
        free = [a for a in engine2.free_addresses() if a not in live_addrs]
        engine2.dap.populate(
            engine2.pipeline.predict_segments(engine2._segment_bits(free)),
            free,
        )
        store2 = KVStore(engine2)
        for key, entry in sidecar.items():
            store2.index.put(key, entry)
            store2._valid[entry[0]] = True

        # Everything written in session 1 is readable in session 2.
        for key, value in contents.items():
            assert store2.get(key) == value
        # The restored model predicts identically to the original.
        sample = bits[0]
        assert engine2.pipeline.model.predict_one(sample) == (
            engine.pipeline.model.predict_one(sample)
        )
        # And the store keeps working: new writes, updates, deletes.
        store2.put(b"new-key", b"fresh")
        assert store2.get(b"new-key") == b"fresh"
        store2.put(b"key00", b"updated")
        assert store2.get(b"key00") == b"updated"
        assert store2.delete(b"key01")
        conserved = engine2.dap.free_count() + engine2.allocated_count
        assert conserved == device2.n_segments

    def test_wear_counters_survive_restart(self, tmp_path):
        """Endurance tracking is part of the media: a restart must not
        forget how worn the cells are."""
        device = NVMDevice(
            capacity_bytes=16 * 64, segment_size=64, track_bit_wear=True
        )
        controller = MemoryController(device)
        for i in range(50):
            controller.write((i % 16) * 64, bytes([i]) * 64)
        summary_before = device.wear_summary()
        device.save(tmp_path / "worn.npz")

        restored = NVMDevice.load(tmp_path / "worn.npz")
        assert restored.wear_summary() == summary_before
        assert np.array_equal(restored.bit_wear, device.bit_wear)
