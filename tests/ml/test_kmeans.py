"""K-means tests: recovery of planted clusters, invariants, edge cases."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.kmeans import KMeans, _pairwise_sq_distances


def planted_clusters(n_per=30, k=3, d=4, spread=0.05, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(0.0, 5.0, size=(k, d))
    X = np.concatenate(
        [c + rng.normal(0.0, spread, size=(n_per, d)) for c in centers]
    )
    labels = np.repeat(np.arange(k), n_per)
    return X, labels, centers


class TestPairwiseDistances:
    def test_matches_naive(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(10, 3))
        C = rng.normal(size=(4, 3))
        naive = ((X[:, None, :] - C[None, :, :]) ** 2).sum(axis=2)
        assert np.allclose(_pairwise_sq_distances(X, C), naive)

    def test_non_negative(self):
        X = np.ones((5, 2)) * 1e8
        assert (_pairwise_sq_distances(X, X) >= 0).all()


class TestKMeans:
    def test_validation(self):
        with pytest.raises(ValueError):
            KMeans(0)
        with pytest.raises(ValueError):
            KMeans(5).fit(np.zeros((3, 2)))
        with pytest.raises(ValueError):
            KMeans(2).fit(np.zeros(0))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            KMeans(2).predict(np.zeros((1, 2)))

    def test_recovers_planted_clusters(self):
        X, truth, _ = planted_clusters()
        km = KMeans(3, seed=0).fit(X)
        # Cluster labels are a permutation of the planted labels.
        for c in range(3):
            members = km.labels_[truth == c]
            assert len(np.unique(members)) == 1

    def test_inertia_matches_definition(self):
        X, _, _ = planted_clusters(seed=2)
        km = KMeans(3, seed=2).fit(X)
        diffs = X - km.cluster_centers_[km.labels_]
        assert km.inertia_ == pytest.approx(float((diffs**2).sum()), rel=1e-6)

    def test_inertia_decreases_with_k(self):
        X, _, _ = planted_clusters(n_per=40, k=4, seed=3)
        inertias = [KMeans(k, seed=3).fit(X).inertia_ for k in (1, 2, 4, 8)]
        assert all(a >= b for a, b in zip(inertias, inertias[1:]))

    def test_predict_assigns_nearest_center(self):
        X, _, _ = planted_clusters(seed=4)
        km = KMeans(3, seed=4).fit(X)
        pred = km.predict(X)
        d = _pairwise_sq_distances(X, km.cluster_centers_)
        assert np.array_equal(pred, d.argmin(axis=1))

    def test_single_point_per_cluster(self):
        X = np.array([[0.0, 0.0], [10.0, 10.0]])
        km = KMeans(2, seed=5).fit(X)
        assert sorted(km.labels_.tolist()) == [0, 1]
        assert km.inertia_ == pytest.approx(0.0)

    def test_duplicate_points(self):
        X = np.zeros((10, 3))
        km = KMeans(2, seed=6).fit(X)
        assert km.inertia_ == pytest.approx(0.0)

    def test_transform_shape(self):
        X, _, _ = planted_clusters(seed=7)
        km = KMeans(3, seed=7).fit(X)
        assert km.transform(X[:5]).shape == (5, 3)

    def test_n_init_picks_best(self):
        X, _, _ = planted_clusters(n_per=20, k=5, seed=8)
        multi = KMeans(5, n_init=5, seed=8).fit(X)
        single = KMeans(5, n_init=1, seed=8).fit(X)
        assert multi.inertia_ <= single.inertia_ + 1e-9

    @given(st.integers(min_value=2, max_value=5))
    @settings(max_examples=10, deadline=None)
    def test_every_point_gets_a_label_in_range(self, k):
        rng = np.random.default_rng(k)
        X = rng.normal(size=(30, 3))
        km = KMeans(k, seed=k).fit(X)
        assert km.labels_.shape == (30,)
        assert set(np.unique(km.labels_)) <= set(range(k))
