"""SSE and elbow-method tests."""

import numpy as np
import pytest

from repro.ml.metrics import elbow_k, sum_squared_error


class TestSSE:
    def test_zero_for_points_on_centroids(self):
        X = np.array([[0.0, 0.0], [1.0, 1.0]])
        labels = np.array([0, 1])
        assert sum_squared_error(X, labels, X) == pytest.approx(0.0)

    def test_known_value(self):
        X = np.array([[0.0], [2.0], [10.0]])
        labels = np.array([0, 0, 1])
        centers = np.array([[1.0], [10.0]])
        assert sum_squared_error(X, labels, centers) == pytest.approx(2.0)

    def test_nonnegative(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(50, 3))
        labels = rng.integers(0, 4, size=50)
        centers = rng.normal(size=(4, 3))
        assert sum_squared_error(X, labels, centers) >= 0.0


class TestElbow:
    def test_detects_sharp_knee(self):
        ks = [1, 2, 3, 4, 5, 6, 7, 8]
        sse = [100, 60, 30, 10, 8, 7, 6.5, 6]
        assert elbow_k(ks, sse) == 4

    def test_knee_at_paper_like_curve(self):
        """A CIFAR-like curve bending around K=6, as in Figure 8."""
        ks = list(range(1, 13))
        sse = [120, 90, 68, 50, 38, 30, 27, 25, 23.5, 22.5, 22, 21.5]
        assert elbow_k(ks, sse) in (5, 6, 7)

    def test_requires_three_points(self):
        with pytest.raises(ValueError):
            elbow_k([1, 2], [5, 3])

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            elbow_k([1, 2, 3], [5, 3])

    def test_flat_curve_returns_first(self):
        assert elbow_k([1, 2, 3, 4], [5, 5, 5, 5]) in (1, 2, 3, 4)

    def test_linear_curve_has_no_strong_preference(self):
        # A straight line has zero distance everywhere; any answer in range.
        result = elbow_k([1, 2, 3, 4, 5], [50, 40, 30, 20, 10])
        assert 1 <= result <= 5
