"""VAE tests: gradcheck of the full loss, training behaviour, shapes."""

import numpy as np
import pytest

from repro.ml.optim import Adam
from repro.ml.vae import VAE, _EPS
from repro.workloads.datasets import make_image_dataset


def tiny_vae(input_dim=16, latent_dim=3, hidden=(8,), seed=0):
    return VAE(input_dim, latent_dim=latent_dim, hidden=hidden, seed=seed)


def clustered_bits(n=120, d=32, seed=0):
    bits, _ = make_image_dataset(n, d, n_classes=3, noise=0.1, seed=seed)
    return bits


class TestVAEForward:
    def test_encode_shapes(self):
        vae = tiny_vae()
        mu, logvar = vae.encode(np.zeros((5, 16)))
        assert mu.shape == (5, 3)
        assert logvar.shape == (5, 3)

    def test_transform_is_posterior_mean(self):
        vae = tiny_vae()
        X = np.zeros((4, 16))
        mu, _ = vae.encode(X)
        assert np.allclose(vae.transform(X), mu)

    def test_reconstruct_returns_probabilities(self):
        vae = tiny_vae()
        probs = vae.reconstruct(np.ones((3, 16)))
        assert probs.shape == (3, 16)
        assert ((probs >= 0) & (probs <= 1)).all()

    def test_wrong_width_raises(self):
        with pytest.raises(ValueError):
            tiny_vae().encode(np.zeros((2, 7)))

    def test_bad_dims_raise(self):
        with pytest.raises(ValueError):
            VAE(0)


class TestVAEGradients:
    def test_full_loss_gradcheck(self):
        """Finite-difference check of d(loss)/d(params) through the
        reparameterisation trick, with the noise held fixed."""
        rng = np.random.default_rng(0)
        vae = tiny_vae(input_dim=6, latent_dim=2, hidden=(5,), seed=1)
        x = (rng.random((3, 6)) > 0.5).astype(np.float64)
        eps = rng.standard_normal((3, 2))

        def loss():
            h = vae.trunk.forward(x)
            mu = vae.mu_head.forward(h)
            logvar = np.clip(vae.logvar_head.forward(h), -8, 8)
            z = mu + eps * np.exp(0.5 * logvar)
            logits = vae.decoder.forward(z)
            probs = 1.0 / (1.0 + np.exp(-logits))
            bce = -(
                x * np.log(probs + _EPS)
                + (1 - x) * np.log(1 - probs + _EPS)
            ).sum() / len(x)
            kl = -0.5 * (1 + logvar - mu**2 - np.exp(logvar)).sum() / len(x)
            return float(bce + kl)

        # Analytic pass with the same eps, via a no-op "optimizer" that
        # captures gradients instead of stepping.
        captured = {}

        class Capture:
            def step(self, params, grads):
                captured["grads"] = [g.copy() for g in grads]

        vae._rng = _FixedEps(eps)
        vae.train_batch(x, Capture())

        for param, grad in zip(vae.params, captured["grads"]):
            num = np.zeros_like(param)
            it = np.nditer(param, flags=["multi_index"])
            # Sample a few entries per tensor; full FD would be slow.
            checked = 0
            while not it.finished and checked < 5:
                idx = it.multi_index
                orig = param[idx]
                h = 1e-6
                param[idx] = orig + h
                up = loss()
                param[idx] = orig - h
                down = loss()
                param[idx] = orig
                num[idx] = (up - down) / (2 * h)
                assert grad[idx] == pytest.approx(num[idx], abs=1e-4), idx
                checked += 1
                for _ in range(7):
                    if not it.finished:
                        it.iternext()


class _FixedEps:
    """RNG stub returning a fixed standard-normal draw."""

    def __init__(self, eps):
        self._eps = eps

    def standard_normal(self, shape):
        assert shape == self._eps.shape
        return self._eps


class TestVAETraining:
    def test_loss_decreases(self):
        X = clustered_bits()
        vae = VAE(32, latent_dim=4, hidden=(16,), seed=0)
        history = vae.fit(X, epochs=8, batch_size=32, lr=3e-3)
        assert history["train_loss"][-1] < history["train_loss"][0]

    def test_history_lengths(self):
        X = clustered_bits(n=60)
        vae = VAE(32, latent_dim=4, hidden=(16,), seed=1)
        history = vae.fit(X, epochs=3, batch_size=32)
        assert len(history["train_loss"]) == 3
        assert len(history["val_loss"]) == 3

    def test_validation_tracks_training(self):
        X = clustered_bits(n=200, seed=2)
        vae = VAE(32, latent_dim=4, hidden=(16,), seed=2)
        history = vae.fit(X, epochs=8, batch_size=32, lr=3e-3)
        assert history["val_loss"][-1] < history["val_loss"][0]

    def test_early_stopping_trims_epochs(self):
        """With a tight patience and an easily learned dataset, training
        stops before the epoch budget."""
        X = clustered_bits(n=150, seed=9)
        vae = VAE(32, latent_dim=4, hidden=(16,), seed=9)
        history = vae.fit(
            X, epochs=60, batch_size=32, lr=3e-3, patience=2,
            min_improvement=0.05,
        )
        assert len(history["train_loss"]) < 60

    def test_early_stopping_disabled_runs_all_epochs(self):
        X = clustered_bits(n=60, seed=10)
        vae = VAE(32, latent_dim=4, hidden=(16,), seed=10)
        history = vae.fit(X, epochs=5, batch_size=32)
        assert len(history["train_loss"]) == 5

    def test_evaluate_deterministic(self):
        X = clustered_bits(n=50, seed=3)
        vae = tiny_vae(input_dim=32, seed=3)
        assert vae.evaluate(X) == pytest.approx(vae.evaluate(X))

    def test_evaluate_empty_raises(self):
        with pytest.raises(ValueError):
            tiny_vae().evaluate(np.zeros((0, 16)))

    def test_latents_cluster_by_class(self):
        """Same-class inputs should land closer in latent space."""
        bits, labels = make_image_dataset(200, 32, n_classes=2, noise=0.05, seed=4)
        vae = VAE(32, latent_dim=4, hidden=(16,), seed=4)
        vae.fit(bits, epochs=15, batch_size=32, lr=3e-3)
        Z = vae.transform(bits)
        c0, c1 = Z[labels == 0].mean(0), Z[labels == 1].mean(0)
        within = np.linalg.norm(Z[labels == 0] - c0, axis=1).mean()
        between = np.linalg.norm(c0 - c1)
        assert between > within

    def test_adam_state_survives_epochs(self):
        X = clustered_bits(n=40, seed=5)
        vae = tiny_vae(input_dim=32, seed=5)
        opt = Adam(lr=1e-3)
        r1 = vae.train_batch(X, opt)
        r2 = vae.train_batch(X, opt)
        assert np.isfinite(r1["loss"]) and np.isfinite(r2["loss"])

    def test_z_grad_hook_receives_latents(self):
        X = clustered_bits(n=40, seed=6)
        vae = tiny_vae(input_dim=32, seed=6)
        seen = {}

        def hook(z):
            seen["shape"] = z.shape
            return 0.0, np.zeros_like(z)

        vae.train_batch(X, Adam(), z_grad_hook=hook)
        assert seen["shape"] == (40, 3)
