"""Distilled student placer: featurisation, distillation, serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.student import (
    N_BYTE_BINS,
    N_FEATURES,
    StudentPlacer,
    featurize_bits,
    featurize_values,
)
from repro.ml.serialization import load_student, save_student


def _three_regime_values(n_per: int, length: int, seed: int = 0):
    """Byte values from three clearly separable content regimes."""
    rng = np.random.default_rng(seed)
    values, labels = [], []
    for label, (lo, hi) in enumerate([(0, 30), (110, 150), (225, 256)]):
        for _ in range(n_per):
            values.append(
                rng.integers(lo, hi, size=length, dtype=np.uint8).tobytes()
            )
            labels.append(label)
    return values, np.array(labels)


class TestFeaturize:
    def test_histogram_normalised_and_length_feature(self):
        F = featurize_values([b"\x00\x00\xff\xff", b"\x01"], segment_size=8)
        assert F.shape == (2, N_FEATURES)
        assert F[0, 0] == pytest.approx(0.5)
        assert F[0, 255] == pytest.approx(0.5)
        assert F[0, N_BYTE_BINS] == pytest.approx(4 / 8)
        assert F[1, 1] == pytest.approx(1.0)
        assert F[1, N_BYTE_BINS] == pytest.approx(1 / 8)
        np.testing.assert_allclose(F[:, :N_BYTE_BINS].sum(axis=1), 1.0)

    def test_empty_value_is_all_zero(self):
        F = featurize_values([b""], segment_size=8)
        assert not F.any()

    def test_featurize_bits_matches_packed_bytes(self):
        rng = np.random.default_rng(3)
        raw = rng.integers(0, 256, size=(4, 16), dtype=np.uint8)
        bits = np.unpackbits(raw, axis=1).astype(np.float64)
        direct = featurize_values([row.tobytes() for row in raw], 16)
        via_bits = featurize_bits(bits, 16)
        np.testing.assert_allclose(via_bits, direct)


class TestStudentFit:
    def test_distills_separable_regimes_with_high_fidelity(self):
        values, labels = _three_regime_values(30, 32, seed=1)
        student = StudentPlacer(3, segment_size=32, seed=0)
        student.fit(featurize_values(values, 32), labels, epochs=200, lr=0.1)
        assert student.trained
        assert student.train_agreement >= 0.95
        preds, conf = student.predict_values(values)
        assert (preds == labels).mean() >= 0.95
        assert conf.shape == (len(values),)
        assert np.all((0.0 <= conf) & (conf <= 1.0))

    def test_confidence_is_winning_probability(self):
        values, labels = _three_regime_values(20, 16, seed=2)
        student = StudentPlacer(3, segment_size=16, seed=0)
        student.fit(featurize_values(values, 16), labels, epochs=100)
        F = featurize_values(values[:5], 16)
        probs = student.predict_proba(F)
        preds, conf = student.predict(F)
        np.testing.assert_allclose(conf, probs.max(axis=1))
        np.testing.assert_array_equal(preds, probs.argmax(axis=1))

    def test_fit_rejects_bad_shapes(self):
        student = StudentPlacer(2, segment_size=8)
        with pytest.raises(ValueError, match="empty"):
            student.fit(np.empty((0, N_FEATURES)), np.empty(0))
        with pytest.raises(ValueError, match="columns"):
            student.fit(np.zeros((2, 5)), np.zeros(2))
        with pytest.raises(ValueError, match="length"):
            student.fit(np.zeros((2, N_FEATURES)), np.zeros(3))

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            StudentPlacer(0, segment_size=8)
        with pytest.raises(ValueError):
            StudentPlacer(2, segment_size=0)


class TestStudentSerialization:
    def test_round_trip_preserves_predictions(self, tmp_path):
        values, labels = _three_regime_values(15, 16, seed=5)
        student = StudentPlacer(3, segment_size=16, seed=0)
        student.fit(featurize_values(values, 16), labels, epochs=80)
        path = tmp_path / "student.npz"
        save_student(student, path)
        restored = load_student(path)
        assert restored.trained
        assert restored.n_clusters == 3
        assert restored.segment_size == 16
        assert restored.train_agreement == pytest.approx(
            student.train_agreement
        )
        F = featurize_values(values, 16)
        np.testing.assert_allclose(
            restored.predict_proba(F), student.predict_proba(F)
        )

    def test_kind_mismatch_rejected(self, tmp_path):
        from repro.ml.lstm import LSTMPredictor
        from repro.ml.serialization import save_lstm

        lstm = LSTMPredictor(window_bits=8, chunk_bits=4, hidden_dim=4, seed=0)
        path = tmp_path / "lstm.npz"
        save_lstm(lstm, path)
        with pytest.raises(ValueError, match="not a student snapshot"):
            load_student(path)
