"""PCA tests: variance capture, reconstruction, orthonormality."""

import numpy as np
import pytest

from repro.ml.pca import PCA


def low_rank_data(n=100, d=10, rank=3, seed=0):
    rng = np.random.default_rng(seed)
    basis = rng.normal(size=(rank, d))
    scales = 5.0 / (1.0 + np.arange(rank))
    coeffs = rng.normal(size=(n, rank)) * scales
    return coeffs @ basis + rng.normal(0.0, 0.01, size=(n, d))


class TestPCA:
    def test_validation(self):
        with pytest.raises(ValueError):
            PCA(0)
        with pytest.raises(ValueError):
            PCA(2).fit(np.zeros((1, 3)))
        with pytest.raises(RuntimeError):
            PCA(2).transform(np.zeros((2, 3)))

    def test_transform_shape(self):
        X = low_rank_data()
        Z = PCA(3).fit_transform(X)
        assert Z.shape == (100, 3)

    def test_components_are_orthonormal(self):
        pca = PCA(4).fit(low_rank_data())
        gram = pca.components_ @ pca.components_.T
        assert np.allclose(gram, np.eye(4), atol=1e-8)

    def test_low_rank_data_reconstructs_well(self):
        X = low_rank_data()
        pca = PCA(3).fit(X)
        recon = pca.inverse_transform(pca.transform(X))
        rel_err = np.linalg.norm(X - recon) / np.linalg.norm(X)
        assert rel_err < 0.05

    def test_explained_variance_sums_near_one_for_full_rank(self):
        X = low_rank_data(rank=3)
        pca = PCA(3).fit(X)
        assert pca.explained_variance_ratio_.sum() > 0.99

    def test_explained_variance_descending(self):
        pca = PCA(5).fit(low_rank_data(rank=5, seed=1))
        evr = pca.explained_variance_ratio_
        assert all(a >= b - 1e-12 for a, b in zip(evr, evr[1:]))

    def test_components_capped_by_data(self):
        X = np.random.default_rng(2).normal(size=(4, 3))
        pca = PCA(10).fit(X)
        assert pca.components_.shape[0] <= 3

    def test_transform_centers_data(self):
        X = low_rank_data(seed=3) + 100.0
        pca = PCA(2).fit(X)
        Z = pca.transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-8)

    def test_single_row_transform(self):
        X = low_rank_data(seed=4)
        pca = PCA(2).fit(X)
        z = pca.transform(X[0])
        assert z.shape == (1, 2)
