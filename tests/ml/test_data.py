"""Batching/splitting helper tests."""

import numpy as np
import pytest

from repro.ml.data import iterate_minibatches, train_val_split


class TestSplit:
    def test_sizes(self):
        X = np.arange(100).reshape(100, 1)
        train, val = train_val_split(X, val_fraction=0.2, seed=0)
        assert len(train) == 80
        assert len(val) == 20

    def test_partition_is_complete(self):
        X = np.arange(50).reshape(50, 1)
        train, val = train_val_split(X, val_fraction=0.3, seed=1)
        combined = sorted(np.concatenate([train, val]).ravel().tolist())
        assert combined == list(range(50))

    def test_deterministic_with_seed(self):
        X = np.arange(30).reshape(30, 1)
        a = train_val_split(X, 0.2, seed=7)
        b = train_val_split(X, 0.2, seed=7)
        assert np.array_equal(a[0], b[0])

    def test_validation_bounds(self):
        with pytest.raises(ValueError):
            train_val_split(np.zeros((4, 1)), val_fraction=1.0)
        with pytest.raises(ValueError):
            train_val_split(np.zeros((4, 1)), val_fraction=-0.1)

    def test_zero_fraction(self):
        X = np.arange(10).reshape(10, 1)
        train, val = train_val_split(X, 0.0, seed=2)
        assert len(train) == 10 and len(val) == 0


class TestMinibatches:
    def test_covers_all_rows(self):
        X = np.arange(25).reshape(25, 1)
        seen = np.concatenate(list(iterate_minibatches(X, 8, seed=0)))
        assert sorted(seen.ravel().tolist()) == list(range(25))

    def test_batch_sizes(self):
        X = np.zeros((25, 2))
        sizes = [len(b) for b in iterate_minibatches(X, 8, seed=0)]
        assert sizes == [8, 8, 8, 1]

    def test_no_shuffle_preserves_order(self):
        X = np.arange(10).reshape(10, 1)
        batches = list(iterate_minibatches(X, 4, shuffle=False))
        assert batches[0].ravel().tolist() == [0, 1, 2, 3]

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            list(iterate_minibatches(np.zeros((4, 1)), 0))
