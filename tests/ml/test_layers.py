"""Dense layer and activation tests, including finite-difference gradchecks."""

import numpy as np
import pytest

from repro.ml.activations import Identity, ReLU, Sigmoid, Tanh, get_activation
from repro.ml.layers import Dense
from repro.ml.network import MLP


def numerical_grad(f, x, eps=1e-6):
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        plus = f()
        x[idx] = orig - eps
        minus = f()
        x[idx] = orig
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


class TestActivations:
    @pytest.mark.parametrize("name,cls", [
        ("identity", Identity), ("relu", ReLU), ("sigmoid", Sigmoid),
        ("tanh", Tanh),
    ])
    def test_lookup_by_name(self, name, cls):
        assert isinstance(get_activation(name), cls)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            get_activation("swish")

    def test_instance_passthrough(self):
        act = ReLU()
        assert get_activation(act) is act

    def test_relu_forward(self):
        x = np.array([-1.0, 0.0, 2.0])
        assert ReLU().forward(x).tolist() == [0.0, 0.0, 2.0]

    def test_sigmoid_stable_for_large_inputs(self):
        out = Sigmoid().forward(np.array([-1000.0, 1000.0]))
        assert np.all(np.isfinite(out))
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[1] == pytest.approx(1.0, abs=1e-12)

    @pytest.mark.parametrize("act", [Identity(), ReLU(), Sigmoid(), Tanh()])
    def test_backward_matches_numerical(self, act):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(5,)) + 0.1  # avoid ReLU kink at 0
        out = act.forward(x)
        grad = act.backward(np.ones_like(x), out)
        num = numerical_grad(lambda: act.forward(x).sum(), x)
        assert np.allclose(grad, num, atol=1e-5)


class TestDense:
    def test_shapes(self):
        layer = Dense(4, 3, seed=0)
        out = layer.forward(np.zeros((7, 4)))
        assert out.shape == (7, 3)

    def test_bad_dims_raise(self):
        with pytest.raises(ValueError):
            Dense(0, 3)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            Dense(2, 2).backward(np.zeros((1, 2)))

    def test_gradcheck_weights(self):
        rng = np.random.default_rng(1)
        layer = Dense(4, 3, activation="tanh", seed=1)
        x = rng.normal(size=(6, 4))

        def loss():
            return float((layer.forward(x) ** 2).sum())

        layer.zero_grad()
        out = layer.forward(x)
        layer.backward(2.0 * out)
        num_W = numerical_grad(loss, layer.W)
        num_b = numerical_grad(loss, layer.b)
        assert np.allclose(layer.grad_W, num_W, atol=1e-4)
        assert np.allclose(layer.grad_b, num_b, atol=1e-4)

    def test_gradcheck_input(self):
        rng = np.random.default_rng(2)
        layer = Dense(3, 2, activation="sigmoid", seed=2)
        x = rng.normal(size=(4, 3))
        out = layer.forward(x)
        layer.zero_grad()
        grad_in = layer.backward(2.0 * out)

        def loss():
            return float((layer.forward(x) ** 2).sum())

        num = numerical_grad(loss, x)
        assert np.allclose(grad_in, num, atol=1e-4)

    def test_grads_accumulate_until_zeroed(self):
        layer = Dense(2, 2, seed=3)
        x = np.ones((1, 2))
        layer.forward(x)
        layer.backward(np.ones((1, 2)))
        first = layer.grad_W.copy()
        layer.forward(x)
        layer.backward(np.ones((1, 2)))
        assert np.allclose(layer.grad_W, 2 * first)
        layer.zero_grad()
        assert not layer.grad_W.any()


class TestMLP:
    def test_requires_two_dims(self):
        with pytest.raises(ValueError):
            MLP([4])

    def test_forward_shape(self):
        net = MLP((4, 8, 2), seed=0)
        assert net.forward(np.zeros((5, 4))).shape == (5, 2)

    def test_params_and_grads_align(self):
        net = MLP((4, 8, 2), seed=0)
        assert len(net.params) == len(net.grads) == 4  # 2 layers x (W, b)
        for p, g in zip(net.params, net.grads):
            assert p.shape == g.shape

    def test_gradcheck_end_to_end(self):
        rng = np.random.default_rng(4)
        net = MLP((3, 5, 2), hidden_activation="tanh", seed=4)
        x = rng.normal(size=(4, 3))

        def loss():
            return float((net.forward(x) ** 2).sum())

        net.zero_grad()
        out = net.forward(x)
        net.backward(2.0 * out)
        for p, g in zip(net.params, net.grads):
            num = numerical_grad(loss, p)
            assert np.allclose(g, num, atol=1e-4)
