"""Loss function tests: values and analytic gradients vs finite differences."""

import numpy as np
import pytest

from repro.ml.losses import bernoulli_nll, gaussian_kl, mse


class TestBernoulliNLL:
    def test_perfect_prediction_near_zero(self):
        targets = np.array([[1.0, 0.0, 1.0]])
        probs = np.array([[1.0, 0.0, 1.0]])
        loss, _ = bernoulli_nll(targets, probs)
        assert loss == pytest.approx(0.0, abs=1e-5)

    def test_known_value(self):
        targets = np.array([[1.0]])
        probs = np.array([[0.5]])
        loss, _ = bernoulli_nll(targets, probs)
        assert loss == pytest.approx(np.log(2.0), abs=1e-5)

    def test_gradient_is_fused_sigmoid_form(self):
        rng = np.random.default_rng(0)
        targets = (rng.random((4, 6)) > 0.5).astype(float)
        logits = rng.normal(size=(4, 6))
        probs = 1.0 / (1.0 + np.exp(-logits))
        _, grad = bernoulli_nll(targets, probs)
        # Finite-difference check through the sigmoid.
        eps = 1e-6
        for idx in [(0, 0), (1, 3), (3, 5)]:
            up = logits.copy()
            up[idx] += eps
            down = logits.copy()
            down[idx] -= eps
            loss_up, _ = bernoulli_nll(targets, 1 / (1 + np.exp(-up)))
            loss_down, _ = bernoulli_nll(targets, 1 / (1 + np.exp(-down)))
            num = (loss_up - loss_down) / (2 * eps)
            assert grad[idx] == pytest.approx(num, abs=1e-5)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            bernoulli_nll(np.zeros((2, 3)), np.zeros((2, 4)))


class TestGaussianKL:
    def test_standard_normal_is_zero(self):
        mu = np.zeros((3, 4))
        logvar = np.zeros((3, 4))
        loss, gmu, glv = gaussian_kl(mu, logvar)
        assert loss == pytest.approx(0.0)
        assert not gmu.any()
        assert not glv.any()

    def test_positive_for_nonstandard(self):
        loss, _, _ = gaussian_kl(np.ones((2, 2)), np.ones((2, 2)) * 0.5)
        assert loss > 0

    def test_gradients_match_finite_differences(self):
        rng = np.random.default_rng(1)
        mu = rng.normal(size=(3, 2))
        logvar = rng.normal(size=(3, 2)) * 0.5
        _, gmu, glv = gaussian_kl(mu, logvar)
        eps = 1e-6
        for arr, grad in ((mu, gmu), (logvar, glv)):
            idx = (1, 1)
            orig = arr[idx]
            arr[idx] = orig + eps
            up, _, _ = gaussian_kl(mu, logvar)
            arr[idx] = orig - eps
            down, _, _ = gaussian_kl(mu, logvar)
            arr[idx] = orig
            assert grad[idx] == pytest.approx((up - down) / (2 * eps), abs=1e-5)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            gaussian_kl(np.zeros((2, 3)), np.zeros((3, 2)))


class TestMSE:
    def test_zero_at_match(self):
        x = np.ones((2, 3))
        loss, grad = mse(x, x.copy())
        assert loss == pytest.approx(0.0)
        assert not grad.any()

    def test_known_value(self):
        targets = np.zeros((2, 1))
        predictions = np.array([[1.0], [2.0]])
        loss, grad = mse(targets, predictions)
        assert loss == pytest.approx((1 + 4) / 2)
        assert np.allclose(grad, [[1.0], [2.0]])

    def test_gradient_finite_difference(self):
        rng = np.random.default_rng(2)
        targets = rng.normal(size=(3, 3))
        predictions = rng.normal(size=(3, 3))
        _, grad = mse(targets, predictions)
        eps = 1e-6
        idx = (2, 0)
        predictions[idx] += eps
        up, _ = mse(targets, predictions)
        predictions[idx] -= 2 * eps
        down, _ = mse(targets, predictions)
        predictions[idx] += eps
        assert grad[idx] == pytest.approx((up - down) / (2 * eps), abs=1e-5)
