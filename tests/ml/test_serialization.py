"""Model snapshot/restore tests."""

import numpy as np
import pytest

from repro.ml.joint import JointVAEKMeans
from repro.ml.lstm import LSTMPredictor
from repro.ml.serialization import (
    load_joint,
    load_lstm,
    load_vae,
    save_joint,
    save_lstm,
    save_vae,
)
from repro.ml.vae import VAE
from repro.workloads.datasets import make_image_dataset


@pytest.fixture(scope="module")
def trained_bits():
    bits, _ = make_image_dataset(120, 64, n_classes=3, noise=0.08, seed=0)
    return bits


class TestVAESnapshot:
    def test_roundtrip_preserves_outputs(self, tmp_path, trained_bits):
        vae = VAE(64, latent_dim=4, hidden=(16,), seed=1)
        vae.fit(trained_bits, epochs=3, batch_size=32)
        path = tmp_path / "vae.npz"
        save_vae(vae, path)
        restored = load_vae(path)
        assert np.allclose(
            restored.transform(trained_bits), vae.transform(trained_bits)
        )
        assert restored.evaluate(trained_bits) == pytest.approx(
            vae.evaluate(trained_bits)
        )

    def test_wrong_kind_rejected(self, tmp_path, trained_bits):
        lstm = LSTMPredictor(window_bits=16, chunk_bits=4, hidden_dim=4, seed=0)
        path = tmp_path / "lstm.npz"
        save_lstm(lstm, path)
        with pytest.raises(ValueError):
            load_vae(path)

    def test_restored_model_is_trainable(self, tmp_path, trained_bits):
        vae = VAE(64, latent_dim=4, hidden=(16,), seed=2)
        vae.fit(trained_bits, epochs=2, batch_size=32)
        path = tmp_path / "cont.npz"
        save_vae(vae, path)
        restored = load_vae(path)
        history = restored.fit(trained_bits, epochs=2, batch_size=32)
        assert len(history["train_loss"]) == 2


class TestLSTMSnapshot:
    def test_roundtrip_preserves_generation(self, tmp_path):
        pattern = np.tile([1, 0, 0, 1], 20).astype(float)
        model = LSTMPredictor(window_bits=16, chunk_bits=4, hidden_dim=8, seed=3)
        model.fit(np.stack([pattern] * 5), epochs=3)
        path = tmp_path / "lstm.npz"
        save_lstm(model, path)
        restored = load_lstm(path)
        assert restored.trained
        context = pattern[:32]
        assert np.array_equal(
            restored.generate(context, 8), model.generate(context, 8)
        )


class TestJointSnapshot:
    def test_roundtrip_preserves_predictions(self, tmp_path, trained_bits):
        model = JointVAEKMeans(
            64, 3, latent_dim=4, hidden=(16,), pretrain_epochs=3,
            joint_epochs=1, seed=4,
        ).fit(trained_bits)
        path = tmp_path / "joint.npz"
        save_joint(model, path)
        restored = load_joint(path)
        assert np.array_equal(
            restored.predict(trained_bits), model.predict(trained_bits)
        )
        assert np.allclose(restored.centroids, model.centroids)

    def test_untrained_rejected(self, tmp_path):
        model = JointVAEKMeans(64, 3, latent_dim=4, hidden=(16,), seed=5)
        with pytest.raises(ValueError):
            save_joint(model, tmp_path / "nope.npz")

    def test_restored_model_drives_engine_predictions(self, tmp_path, trained_bits):
        """A restored model can serve as a placement predictor."""
        model = JointVAEKMeans(
            64, 3, latent_dim=4, hidden=(16,), pretrain_epochs=3,
            joint_epochs=1, seed=6,
        ).fit(trained_bits)
        path = tmp_path / "deploy.npz"
        save_joint(model, path)
        restored = load_joint(path)
        for row in trained_bits[:10]:
            assert 0 <= restored.predict_one(row) < 3
