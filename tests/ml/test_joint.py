"""Joint VAE+K-means tests: clustering quality and the DEC-style loop."""

import numpy as np
import pytest

from repro.ml.joint import JointVAEKMeans
from repro.workloads.datasets import make_image_dataset


def small_model(**kwargs):
    defaults = dict(
        input_dim=32,
        n_clusters=3,
        latent_dim=4,
        hidden=(16,),
        pretrain_epochs=4,
        joint_epochs=2,
        batch_size=32,
        seed=0,
    )
    defaults.update(kwargs)
    return JointVAEKMeans(**defaults)


class TestJointVAEKMeans:
    def test_validation(self):
        with pytest.raises(ValueError):
            small_model(n_clusters=0)

    def test_fit_requires_enough_samples(self):
        with pytest.raises(ValueError):
            small_model().fit(np.zeros((2, 32)))

    def test_untrained_access_raises(self):
        with pytest.raises(RuntimeError):
            _ = small_model().centroids

    def test_predict_labels_in_range(self):
        bits, _ = make_image_dataset(100, 32, n_classes=3, seed=1)
        model = small_model().fit(bits)
        labels = model.predict(bits)
        assert set(np.unique(labels)) <= set(range(3))

    def test_predict_one_matches_batch(self):
        bits, _ = make_image_dataset(60, 32, n_classes=3, seed=2)
        model = small_model(seed=2).fit(bits)
        batch = model.predict(bits[:5])
        for i in range(5):
            assert model.predict_one(bits[i]) == batch[i]

    def test_history_contains_all_stages(self):
        bits, _ = make_image_dataset(80, 32, n_classes=3, seed=3)
        model = small_model(seed=3).fit(bits)
        assert len(model.history["train_loss"]) == 4
        assert len(model.history["joint_loss"]) == 2

    def test_recovers_planted_classes(self):
        """Clean 2-class data should split cleanly into 2 clusters."""
        bits, truth = make_image_dataset(200, 48, n_classes=2, noise=0.03, seed=4)
        model = JointVAEKMeans(
            48, n_clusters=2, latent_dim=4, hidden=(24,),
            pretrain_epochs=12, joint_epochs=4, seed=4,
        ).fit(bits)
        pred = model.predict(bits)
        # Majority label agreement under the best permutation.
        agree = max(
            (pred == truth).mean(),
            (pred == 1 - truth).mean(),
        )
        assert agree > 0.9

    def test_clustering_groups_similar_bits(self):
        """Same-cluster members should be closer in Hamming distance than
        different-cluster members — the property E2-NVM relies on."""
        bits, _ = make_image_dataset(150, 32, n_classes=3, noise=0.05, seed=5)
        model = small_model(seed=5, pretrain_epochs=10, joint_epochs=3).fit(bits)
        labels = model.predict(bits)
        within, between = [], []
        for i in range(0, 60):
            for j in range(i + 1, 60):
                d = np.abs(bits[i] - bits[j]).sum()
                (within if labels[i] == labels[j] else between).append(d)
        if within and between:
            assert np.mean(within) < np.mean(between)

    def test_sse_is_nonnegative_and_decreases_with_k(self):
        bits, _ = make_image_dataset(120, 32, n_classes=4, seed=6)
        sses = []
        for k in (2, 4, 8):
            model = small_model(n_clusters=k, seed=6).fit(bits)
            sses.append(model.sse(bits))
        assert all(s >= 0 for s in sses)
        assert sses[-1] <= sses[0]

    def test_cluster_grad_points_to_centroid(self):
        bits, _ = make_image_dataset(60, 32, n_classes=3, seed=7)
        model = small_model(seed=7).fit(bits)
        z = model.transform(bits[:10])
        loss, grad = model._cluster_grad(z)
        assert loss >= 0
        assert grad.shape == z.shape
        # Moving z against the gradient must reduce the clustering loss.
        loss2, _ = model._cluster_grad(z - 0.5 * grad * len(z) / model.gamma)
        assert loss2 <= loss + 1e-9
