"""Optimiser tests: convergence on convex problems, state handling."""

import numpy as np
import pytest

from repro.ml.optim import SGD, Adam


def quadratic_step(opt, steps=200, lr_check=True):
    """Minimise f(x) = ||x - target||^2 from a fixed start."""
    target = np.array([1.0, -2.0, 3.0])
    x = np.zeros(3)
    for _ in range(steps):
        grad = 2.0 * (x - target)
        opt.step([x], [grad])
    return x, target


class TestSGD:
    def test_validation(self):
        with pytest.raises(ValueError):
            SGD(lr=0)
        with pytest.raises(ValueError):
            SGD(lr=0.1, momentum=1.0)

    def test_converges_on_quadratic(self):
        x, target = quadratic_step(SGD(lr=0.1))
        assert np.allclose(x, target, atol=1e-4)

    def test_momentum_converges(self):
        x, target = quadratic_step(SGD(lr=0.05, momentum=0.9))
        assert np.allclose(x, target, atol=1e-3)

    def test_updates_in_place(self):
        x = np.zeros(2)
        ref = x
        SGD(lr=0.1).step([x], [np.ones(2)])
        assert ref is x
        assert np.allclose(x, -0.1)


class TestAdam:
    def test_validation(self):
        with pytest.raises(ValueError):
            Adam(lr=-1)

    def test_converges_on_quadratic(self):
        x, target = quadratic_step(Adam(lr=0.1), steps=500)
        assert np.allclose(x, target, atol=1e-3)

    def test_first_step_magnitude_is_lr(self):
        """With bias correction the first Adam step is ~lr in each coord."""
        x = np.zeros(3)
        Adam(lr=0.01).step([x], [np.array([1.0, -5.0, 100.0])])
        assert np.allclose(np.abs(x), 0.01, atol=1e-4)

    def test_state_tracks_multiple_params(self):
        a, b = np.zeros(2), np.zeros(3)
        opt = Adam(lr=0.1)
        for _ in range(10):
            opt.step([a, b], [np.ones(2), -np.ones(3)])
        assert (a < 0).all() and (b > 0).all()
