"""LSTM tests: gradcheck, learning a periodic pattern, generation."""

import numpy as np
import pytest

from repro.ml.lstm import LSTMCell, LSTMPredictor


class TestLSTMCell:
    def test_forward_shape(self):
        cell = LSTMCell(4, 6, seed=0)
        h = cell.forward(np.zeros((3, 5, 4)))
        assert h.shape == (3, 6)

    def test_validation(self):
        with pytest.raises(ValueError):
            LSTMCell(0, 4)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            LSTMCell(2, 2).backward(np.zeros((1, 2)))

    def test_forget_bias_initialised_to_one(self):
        cell = LSTMCell(3, 5, seed=1)
        assert np.allclose(cell.b[5:10], 1.0)
        assert np.allclose(cell.b[:5], 0.0)

    def test_gradcheck_through_time(self):
        rng = np.random.default_rng(2)
        cell = LSTMCell(2, 3, seed=2)
        x = rng.normal(size=(2, 4, 2))

        def loss():
            return float((cell.forward(x) ** 2).sum())

        cell.zero_grad()
        h = cell.forward(x)
        cell.backward(2.0 * h)
        analytic_W = cell.grad_W.copy()
        analytic_b = cell.grad_b.copy()
        eps = 1e-6
        for param, analytic in ((cell.W, analytic_W), (cell.b, analytic_b)):
            flat = param.reshape(-1)
            for idx in range(0, flat.size, max(1, flat.size // 10)):
                orig = flat[idx]
                flat[idx] = orig + eps
                up = loss()
                flat[idx] = orig - eps
                down = loss()
                flat[idx] = orig
                num = (up - down) / (2 * eps)
                assert analytic.reshape(-1)[idx] == pytest.approx(num, abs=1e-4)


class TestLSTMPredictor:
    def test_validation(self):
        with pytest.raises(ValueError):
            LSTMPredictor(window_bits=10, chunk_bits=3)
        with pytest.raises(ValueError):
            LSTMPredictor(window_bits=0)

    def test_predict_next_shape_and_range(self):
        model = LSTMPredictor(window_bits=16, chunk_bits=4, hidden_dim=6, seed=0)
        probs = model.predict_next(np.zeros(16))
        assert probs.shape == (4,)
        assert ((probs >= 0) & (probs <= 1)).all()

    def test_predict_wrong_window_raises(self):
        model = LSTMPredictor(window_bits=16, chunk_bits=4)
        with pytest.raises(ValueError):
            model.predict_next(np.zeros(12))

    def test_learns_periodic_pattern(self):
        """A strictly periodic bit stream should be continued correctly."""
        pattern = np.tile([1, 1, 1, 1, 0, 0, 0, 0], 16).astype(float)  # 128 bits
        data = np.stack([pattern] * 8)
        model = LSTMPredictor(window_bits=16, chunk_bits=8, hidden_dim=16, seed=1)
        model.fit(data, epochs=30, lr=1e-2, include_reversed=False)
        generated = model.generate(pattern[:64], 16)
        expected = pattern[64:80]
        accuracy = (generated == expected).mean()
        assert accuracy >= 0.8

    def test_generate_length_and_values(self):
        model = LSTMPredictor(window_bits=16, chunk_bits=4, hidden_dim=6, seed=2)
        out = model.generate(np.ones(20), 10)
        assert out.shape == (10,)
        assert set(np.unique(out)) <= {0.0, 1.0}

    def test_generate_zero_bits(self):
        model = LSTMPredictor(window_bits=16, chunk_bits=4, hidden_dim=6, seed=3)
        assert model.generate(np.ones(16), 0).size == 0

    def test_generate_with_short_context_tiles(self):
        model = LSTMPredictor(window_bits=16, chunk_bits=4, hidden_dim=6, seed=4)
        out = model.generate(np.array([1.0, 0.0]), 8)
        assert out.shape == (8,)

    def test_fit_without_material_raises(self):
        model = LSTMPredictor(window_bits=64, chunk_bits=8)
        with pytest.raises(ValueError):
            model.fit(np.zeros((3, 16)))  # vectors shorter than one window

    def test_loss_decreases(self):
        rng = np.random.default_rng(5)
        data = np.tile((rng.random(32) > 0.5).astype(float), (20, 4))
        model = LSTMPredictor(window_bits=32, chunk_bits=8, hidden_dim=12, seed=5)
        history = model.fit(data, epochs=10, lr=5e-3)
        assert history[-1] < history[0]
