"""Uniform behaviour tests for all NVM index structures (Figure 12 cast)."""

import numpy as np
import pytest

from repro.index import (
    BPlusTree,
    FPTree,
    NoveLSMStore,
    PathHashingTable,
    WiscKeyStore,
)
from repro.nvm import MemoryController, NVMDevice


def make_controller(n_segments=512, segment_size=256, seed=0):
    dev = NVMDevice(
        capacity_bytes=n_segments * segment_size,
        segment_size=segment_size,
        initial_fill="random",
        seed=seed,
    )
    return MemoryController(dev)


FACTORIES = {
    "bplustree": lambda c: BPlusTree(c),
    "fptree": lambda c: FPTree(c, slots=8),
    "path_hashing": lambda c: PathHashingTable(
        c, root_cells=256, levels=4, cell_size=64
    ),
    "wisckey": lambda c: WiscKeyStore(c, vlog_segments=32, memtable_limit=16),
    "novelsm": lambda c: NoveLSMStore(c, memtable_slots=32, slot_size=64),
}


@pytest.fixture(params=sorted(FACTORIES))
def index(request):
    return FACTORIES[request.param](make_controller(seed=hash(request.param) % 100))


class TestCommonBehaviour:
    def test_put_get_roundtrip(self, index):
        for i in range(40):
            index.put(b"key%03d" % i, b"value-%03d" % i)
        for i in range(40):
            assert index.get(b"key%03d" % i) == b"value-%03d" % i

    def test_get_missing(self, index):
        assert index.get(b"missing") is None

    def test_update_in_place(self, index):
        index.put(b"k", b"first")
        index.put(b"k", b"second-longer")
        assert index.get(b"k") == b"second-longer"

    def test_delete(self, index):
        index.put(b"k", b"v")
        assert index.delete(b"k") is True
        assert index.get(b"k") is None
        assert index.delete(b"k") is False

    def test_len_counts_live_entries(self, index):
        for i in range(20):
            index.put(b"k%02d" % i, b"v")
        index.delete(b"k05")
        index.put(b"k06", b"v2")  # update, not insert
        assert len(index) == 19

    def test_interleaved_crud_matches_dict(self, index):
        rng = np.random.default_rng(7)
        model = {}
        keys = [b"key%02d" % i for i in range(25)]
        for step in range(300):
            key = keys[int(rng.integers(0, len(keys)))]
            roll = rng.random()
            if roll < 0.55:
                value = bytes(rng.integers(65, 91, 12, dtype=np.uint8))
                index.put(key, value)
                model[key] = value
            elif roll < 0.8:
                assert index.get(key) == model.get(key), step
            else:
                assert index.delete(key) == (key in model), step
                model.pop(key, None)
        for key in keys:
            assert index.get(key) == model.get(key)

    def test_bit_accounting_is_positive(self, index):
        index.put(b"key", b"some value bytes")
        assert index.logical_data_bits == 8 * (3 + 16)
        assert index.bits_programmed() > 0
        assert index.bit_updates_per_data_bit() > 0


class TestStructureSpecific:
    def test_bplustree_splits_preserve_order(self):
        tree = BPlusTree(make_controller())
        keys = [b"k%04d" % i for i in np.random.default_rng(1).permutation(300)]
        for key in keys:
            tree.put(key, b"v-" + key)
        assert [k for k, _ in tree.items()] == sorted(keys)
        assert len(tree) == 300

    def test_bplustree_rewrites_whole_leaves(self):
        """Sorted-leaf maintenance makes B+-tree flips per data bit the
        highest of all structures (the Figure 12 ordering)."""
        results = {}
        for name in ("bplustree", "fptree", "path_hashing"):
            idx = FACTORIES[name](make_controller(seed=5))
            for i in range(150):
                idx.put(b"key%04d" % ((i * 37) % 150), b"x" * 16)
            results[name] = idx.bit_updates_per_data_bit()
        assert results["bplustree"] > results["fptree"]
        assert results["bplustree"] > results["path_hashing"]

    def test_fptree_insert_touches_one_slot(self):
        controller = make_controller(seed=6)
        tree = FPTree(controller, slots=8)
        tree.put(b"a", b"1")
        before = controller.stats.bytes_written
        tree.put(b"b", b"2")
        written = controller.stats.bytes_written - before
        # One slot + the header, not the whole leaf.
        assert written <= tree.slot_size + 2 * tree.slots

    def test_fptree_split_when_full(self):
        tree = FPTree(make_controller(seed=7), slots=4)
        for i in range(40):
            tree.put(b"key%02d" % i, b"v%02d" % i)
        assert len(tree._leaves) > 1
        for i in range(40):
            assert tree.get(b"key%02d" % i) == b"v%02d" % i

    def test_path_hashing_capacity_and_overflow(self):
        table = PathHashingTable(
            make_controller(n_segments=64, segment_size=256),
            root_cells=8,
            levels=2,
            cell_size=64,
        )
        # Capacity is 8 + 4 + 2 = 14 cells; inserting far more must
        # eventually raise rather than corrupt.
        inserted = 0
        with pytest.raises(RuntimeError):
            for i in range(100):
                table.put(b"key%03d" % i, b"v")
                inserted += 1
        assert inserted >= 4  # both paths give at least a few slots
        # Everything inserted before the failure is still readable.
        for i in range(inserted):
            assert table.get(b"key%03d" % i) == b"v"

    def test_path_hashing_cell_size_validation(self):
        with pytest.raises(ValueError):
            PathHashingTable(make_controller(), cell_size=100)

    def test_wisckey_flush_and_compaction(self):
        store = WiscKeyStore(
            make_controller(seed=8), vlog_segments=32, memtable_limit=8,
            max_runs=2,
        )
        for i in range(100):
            store.put(b"key%03d" % i, b"value%03d" % i)
        assert len(store._runs) <= 3
        for i in range(100):
            assert store.get(b"key%03d" % i) == b"value%03d" % i

    def test_wisckey_tombstones_survive_flush(self):
        store = WiscKeyStore(
            make_controller(seed=9), vlog_segments=16, memtable_limit=4
        )
        store.put(b"a", b"1")
        store.delete(b"a")
        for i in range(10):  # force flushes past the tombstone
            store.put(b"k%d" % i, b"v")
        assert store.get(b"a") is None

    def test_novelsm_inplace_update_is_cheap(self):
        """Rewriting a slot with similar content flips few bits (the DCW
        substrate sees mostly-unchanged bytes)."""
        controller = make_controller(seed=10)
        store = NoveLSMStore(controller, memtable_slots=16, slot_size=64)
        store.put(b"key", b"AAAAAAAAAAAAAAAA")
        before = controller.stats.bits_programmed
        store.put(b"key", b"AAAAAAAAAAAAAAAB")  # one byte differs
        delta = controller.stats.bits_programmed - before
        assert delta <= 16  # only the differing byte's bits (plus header)

    def test_novelsm_flush_preserves_data(self):
        store = NoveLSMStore(
            make_controller(seed=11), memtable_slots=8, slot_size=64
        )
        for i in range(50):
            store.put(b"key%02d" % i, b"val%02d" % i)
        for i in range(50):
            assert store.get(b"key%02d" % i) == b"val%02d" % i
