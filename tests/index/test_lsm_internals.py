"""Targeted internals tests for the LSM-style structures."""

import numpy as np
import pytest

from repro.index import NoveLSMStore, WiscKeyStore
from repro.nvm import MemoryController, NVMDevice


def make_controller(n_segments=128, segment_size=256, seed=0):
    device = NVMDevice(
        capacity_bytes=n_segments * segment_size,
        segment_size=segment_size,
        initial_fill="random",
        seed=seed,
    )
    return MemoryController(device)


class TestWiscKeyInternals:
    def test_vlog_wraps_around(self):
        """Enough appends to exceed the vLog capacity must wrap cleanly."""
        store = WiscKeyStore(
            make_controller(), vlog_segments=2, memtable_limit=1000
        )
        value = b"V" * 100  # record ~108 bytes; 2 segments ~ 512 bytes
        for i in range(20):
            store.put(b"key%03d" % i, value)
        # Early values' vLog bytes were overwritten by the wrap; the most
        # recent ones are still intact.
        assert store.get(b"key019") == value
        assert store.get(b"key018") == value

    def test_flush_produces_runs(self):
        store = WiscKeyStore(
            make_controller(seed=1), vlog_segments=16, memtable_limit=4,
            max_runs=100,
        )
        for i in range(20):
            store.put(b"key%02d" % i, b"v%02d" % i)
        assert len(store._runs) == 5
        assert len(store._memtable) == 0

    def test_compaction_merges_and_frees_segments(self):
        store = WiscKeyStore(
            make_controller(seed=2), vlog_segments=16, memtable_limit=4,
            max_runs=2,
        )
        for i in range(40):
            store.put(b"key%02d" % (i % 10), b"val%03d" % i)
        assert len(store._runs) <= 3
        # Newest value per key survives compaction.
        for i in range(10):
            latest = max(j for j in range(40) if j % 10 == i)
            assert store.get(b"key%02d" % i) == b"val%03d" % latest

    def test_run_binary_search(self):
        store = WiscKeyStore(
            make_controller(seed=3), vlog_segments=16, memtable_limit=8
        )
        for i in range(8):  # exactly one flush
            store.put(b"key%02d" % i, b"v%02d" % i)
        run = store._runs[0]
        assert run.get(b"key03") is not None
        assert run.get(b"key99") is None
        assert run.get(b"aaaaa") is None

    def test_oversized_vlog_record_raises(self):
        store = WiscKeyStore(make_controller(seed=4), vlog_segments=4)
        with pytest.raises(ValueError):
            store.put(b"k", b"x" * 300)


class TestNoveLSMInternals:
    def test_slot_reuse_after_flush(self):
        store = NoveLSMStore(
            make_controller(seed=5), memtable_slots=4, slot_size=64
        )
        for i in range(12):  # 3 flush cycles
            store.put(b"key%02d" % i, b"v%02d" % i)
        assert len(store._runs) >= 2
        for i in range(12):
            assert store.get(b"key%02d" % i) == b"v%02d" % i

    def test_compaction_bounds_runs(self):
        store = NoveLSMStore(
            make_controller(seed=6), memtable_slots=4, slot_size=64,
            max_runs=2,
        )
        for i in range(40):
            store.put(b"key%02d" % (i % 8), b"value%03d" % i)
        assert len(store._runs) <= 3

    def test_tombstone_across_flush(self):
        store = NoveLSMStore(
            make_controller(seed=7), memtable_slots=4, slot_size=64
        )
        store.put(b"gone", b"here")
        for i in range(8):  # push "gone" into a run
            store.put(b"fill%02d" % i, b"v")
        assert store.get(b"gone") == b"here"
        store.delete(b"gone")
        for i in range(8):  # push the tombstone into a run too
            store.put(b"more%02d" % i, b"v")
        assert store.get(b"gone") is None

    def test_inplace_update_reuses_slot(self):
        store = NoveLSMStore(
            make_controller(seed=8), memtable_slots=8, slot_size=64
        )
        store.put(b"key", b"first")
        slot_before = store._slot_of[b"key"]
        store.put(b"key", b"second")
        assert store._slot_of[b"key"] == slot_before

    def test_oversized_entry_raises(self):
        store = NoveLSMStore(
            make_controller(seed=9), memtable_slots=4, slot_size=32
        )
        with pytest.raises(ValueError):
            store.put(b"key", b"x" * 64)

    def test_slot_addresses_stay_in_memtable_region(self):
        store = NoveLSMStore(
            make_controller(seed=10), memtable_slots=16, slot_size=64
        )
        region_end = store._memtable_segments * store.controller.segment_size
        for slot in range(16):
            addr = store._slot_addr(slot)
            assert 0 <= addr < region_end
            assert addr + store.slot_size <= region_end
