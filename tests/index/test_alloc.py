"""Segment allocator tests."""

import pytest

from repro.index.alloc import SegmentAllocator
from repro.nvm import MemoryController, NVMDevice


def make_alloc(n_segments=8, start=0):
    device = NVMDevice(capacity_bytes=n_segments * 64, segment_size=64)
    return SegmentAllocator(MemoryController(device), start_segment=start)


class TestSegmentAllocator:
    def test_bump_allocation_is_sequential(self):
        alloc = make_alloc()
        assert alloc.allocate() == 0
        assert alloc.allocate() == 64
        assert alloc.allocate() == 128

    def test_start_segment_offset(self):
        alloc = make_alloc(start=3)
        assert alloc.allocate() == 3 * 64

    def test_free_list_reuse(self):
        alloc = make_alloc()
        first = alloc.allocate()
        alloc.allocate()
        alloc.free(first)
        assert alloc.allocate() == first

    def test_exhaustion(self):
        alloc = make_alloc(n_segments=2)
        alloc.allocate()
        alloc.allocate()
        with pytest.raises(RuntimeError):
            alloc.allocate()

    def test_free_then_exhaustion_recovers(self):
        alloc = make_alloc(n_segments=2)
        a = alloc.allocate()
        alloc.allocate()
        alloc.free(a)
        assert alloc.allocate() == a
        with pytest.raises(RuntimeError):
            alloc.allocate()

    def test_segments_in_use(self):
        alloc = make_alloc()
        a = alloc.allocate()
        alloc.allocate()
        assert alloc.segments_in_use == 2
        alloc.free(a)
        assert alloc.segments_in_use == 1
