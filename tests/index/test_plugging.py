"""Plugging index structures into E2-NVM (the Figure 12 experiment's core)."""

import pytest

from repro.core import E2NVM
from repro.core.config import fast_test_config
from repro.index import (
    BPlusTree,
    FPTree,
    InlineValues,
    NoveLSMStore,
    PathHashingTable,
    PluggedValues,
    WiscKeyStore,
)
from repro.nvm import MemoryController, NVMDevice
from repro.workloads.datasets import bits_to_values, make_image_dataset


def make_engine(seed=0, n_segments=128, segment_size=64):
    """An engine over clusterable content (image-like segments)."""
    bits, _ = make_image_dataset(
        n_segments, segment_size * 8, n_classes=4, noise=0.05, seed=seed
    )
    device = NVMDevice(
        capacity_bytes=n_segments * segment_size,
        segment_size=segment_size,
        initial_fill="zero",
    )
    controller = MemoryController(device)
    for i, v in enumerate(bits_to_values(bits)):
        controller.write(i * segment_size, v)
    device.reset_stats()
    engine = E2NVM(controller, fast_test_config(n_clusters=4, seed=seed))
    engine.train()
    return engine


def make_index_controller(seed=0):
    dev = NVMDevice(
        capacity_bytes=512 * 256,
        segment_size=256,
        initial_fill="random",
        seed=seed,
    )
    return MemoryController(dev)


FACTORIES = {
    "bplustree": lambda c, v: BPlusTree(c, values=v),
    "fptree": lambda c, v: FPTree(c, values=v, slots=8, slot_size=24),
    "path_hashing": lambda c, v: PathHashingTable(
        c, values=v, root_cells=256, cell_size=32
    ),
    "wisckey": lambda c, v: WiscKeyStore(
        c, values=v, vlog_segments=32, memtable_limit=16
    ),
    "novelsm": lambda c, v: NoveLSMStore(
        c, values=v, memtable_slots=32, slot_size=32
    ),
}


class TestPluggedValues:
    def test_store_and_load_pointer(self):
        engine = make_engine()
        values = PluggedValues(engine)
        stored = values.store(b"hello world")
        assert len(stored) == PluggedValues.POINTER_BYTES
        assert values.load(engine.controller, stored) == b"hello world"

    def test_release_recycles_engine_segment(self):
        engine = make_engine()
        values = PluggedValues(engine)
        free_before = engine.dap.free_count()
        stored = values.store(b"x" * 16)
        assert engine.dap.free_count() == free_before - 1
        values.release(stored)
        assert engine.dap.free_count() == free_before

    def test_extra_bits_tracks_engine_traffic(self):
        engine = make_engine()
        values = PluggedValues(engine)
        assert values.extra_bits_programmed() == 0
        values.store(b"y" * 32)
        assert values.extra_bits_programmed() > 0


@pytest.mark.parametrize("name", sorted(FACTORIES))
class TestPluggedStructures:
    def test_roundtrip_with_engine_values(self, name):
        engine = make_engine(seed=1)
        index = FACTORIES[name](make_index_controller(seed=1), PluggedValues(engine))
        for i in range(30):
            index.put(b"key%02d" % i, b"payload%02d" % i)
        for i in range(30):
            assert index.get(b"key%02d" % i) == b"payload%02d" % i

    def test_delete_releases_value_segment(self, name):
        engine = make_engine(seed=2)
        index = FACTORIES[name](make_index_controller(seed=2), PluggedValues(engine))
        index.put(b"k", b"v" * 8)
        allocated = engine.allocated_count
        index.delete(b"k")
        assert engine.allocated_count == allocated - 1


class TestPluggingReducesFlips:
    def test_figure12_direction(self):
        """Clustered values through E2-NVM must flip fewer bits than the
        same values inline, for the structure the paper calls out (B+-tree)."""
        bits, _ = make_image_dataset(300, 512, n_classes=4, noise=0.05, seed=4)
        payload = bits_to_values(bits)

        # Inline: values live in sorted leaves, shifted on every insert.
        inline = BPlusTree(make_index_controller(seed=4), InlineValues())
        for i, v in enumerate(payload[:150]):
            inline.put(b"key%04d" % ((i * 61) % 150), v)

        # Plugged: leaves hold 12-byte pointers; values placed by E2-NVM.
        engine = make_engine(seed=4, n_segments=256)
        plugged = BPlusTree(make_index_controller(seed=5), PluggedValues(engine))
        for i, v in enumerate(payload[:150]):
            plugged.put(b"key%04d" % ((i * 61) % 150), v)

        assert plugged.bit_updates_per_data_bit() < inline.bit_updates_per_data_bit()
