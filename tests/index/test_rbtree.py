"""Red-black tree tests: CRUD, ordering, and stateful model checking."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.rbtree import BLACK, RED, RedBlackTree


def rb_invariants(tree: RedBlackTree) -> None:
    """Assert the classic red-black properties."""
    nil = tree._nil
    assert tree._root.color is BLACK

    def walk(node):
        if node is nil:
            return 1  # black height of a leaf
        if node.color is RED:
            assert node.left.color is BLACK and node.right.color is BLACK
        if node.left is not nil:
            assert node.left.key < node.key
        if node.right is not nil:
            assert node.right.key > node.key
        lh = walk(node.left)
        rh = walk(node.right)
        assert lh == rh, "black heights differ"
        return lh + (1 if node.color is BLACK else 0)

    walk(tree._root)


class TestBasics:
    def test_empty(self):
        tree = RedBlackTree()
        assert len(tree) == 0
        assert tree.get(b"x") is None
        assert tree.delete(b"x") is False
        assert tree.minimum() is None
        assert tree.maximum() is None

    def test_put_get(self):
        tree = RedBlackTree()
        tree.put(b"b", 2)
        tree.put(b"a", 1)
        tree.put(b"c", 3)
        assert tree.get(b"a") == 1
        assert tree.get(b"b") == 2
        assert len(tree) == 3

    def test_overwrite(self):
        tree = RedBlackTree()
        tree.put(b"k", 1)
        tree.put(b"k", 2)
        assert tree.get(b"k") == 2
        assert len(tree) == 1

    def test_items_sorted(self):
        tree = RedBlackTree()
        for key in [b"d", b"a", b"c", b"b", b"e"]:
            tree.put(key, key)
        assert [k for k, _ in tree.items()] == [b"a", b"b", b"c", b"d", b"e"]

    def test_min_max(self):
        tree = RedBlackTree()
        for i in [5, 2, 8, 1, 9]:
            tree.put(i, i * 10)
        assert tree.minimum() == (1, 10)
        assert tree.maximum() == (9, 90)

    def test_range_inclusive(self):
        tree = RedBlackTree()
        for i in range(10):
            tree.put(i, i)
        assert [k for k, _ in tree.range(3, 6)] == [3, 4, 5, 6]

    def test_range_prunes_correctly(self):
        tree = RedBlackTree()
        for i in range(100):
            tree.put(i, i)
        assert [k for k, _ in tree.range(90, 200)] == list(range(90, 100))
        assert [k for k, _ in tree.range(-5, 3)] == [0, 1, 2, 3]

    def test_delete_all_orders(self):
        for order in ([1, 2, 3], [3, 2, 1], [2, 1, 3]):
            tree = RedBlackTree()
            for i in order:
                tree.put(i, i)
            for i in order:
                assert tree.delete(i)
                rb_invariants(tree)
            assert len(tree) == 0


class TestInvariants:
    def test_invariants_under_sequential_inserts(self):
        tree = RedBlackTree()
        for i in range(200):
            tree.put(i, i)
            if i % 20 == 0:
                rb_invariants(tree)
        rb_invariants(tree)

    def test_invariants_under_random_mix(self):
        rng = np.random.default_rng(0)
        tree = RedBlackTree()
        model = {}
        for step in range(600):
            key = int(rng.integers(0, 60))
            if rng.random() < 0.6:
                tree.put(key, step)
                model[key] = step
            else:
                assert tree.delete(key) == (key in model)
                model.pop(key, None)
            if step % 50 == 0:
                rb_invariants(tree)
        assert sorted(model) == [k for k, _ in tree.items()]
        for key, value in model.items():
            assert tree.get(key) == value

    @given(
        st.lists(
            st.tuples(st.integers(0, 30), st.booleans()),
            min_size=1,
            max_size=120,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_model_equivalence_property(self, ops):
        tree = RedBlackTree()
        model = {}
        for key, is_put in ops:
            if is_put:
                tree.put(key, key * 2)
                model[key] = key * 2
            else:
                assert tree.delete(key) == (key in model)
                model.pop(key, None)
        assert len(tree) == len(model)
        assert [k for k, _ in tree.items()] == sorted(model)
        rb_invariants(tree)
