"""YCSB workload tests: mixes, key validity, value structure."""

from collections import Counter

import pytest

from repro.util.bits import hamming_distance
from repro.workloads.ycsb import (
    WORKLOADS,
    PrototypeValueGenerator,
    WorkloadSpec,
    YCSBWorkload,
)


class TestSpec:
    def test_core_workloads_defined(self):
        assert set(WORKLOADS) == {"A", "B", "C", "D", "E", "F"}

    def test_mix_must_sum_to_one(self):
        with pytest.raises(ValueError):
            WorkloadSpec("bad", read=0.5, update=0.2)

    def test_workload_d_uses_latest(self):
        assert WORKLOADS["D"].distribution == "latest"


class TestValueGenerator:
    def test_size(self):
        gen = PrototypeValueGenerator(100, seed=0)
        assert len(gen.value()) == 100

    def test_values_cluster_around_prototypes(self):
        """Two values from the same prototype are close in Hamming distance;
        the overall stream is clusterable (what E2-NVM needs)."""
        gen = PrototypeValueGenerator(64, n_prototypes=4, noise=0.03, seed=1)
        values = [gen.value() for _ in range(200)]
        distances = [
            hamming_distance(values[i], values[j])
            for i in range(0, 40)
            for j in range(i + 1, 40)
        ]
        # With 4 prototypes, ~1/4 of pairs share a prototype and are near;
        # the rest are ~50% different (256 bits of 512).
        near = sum(1 for d in distances if d < 100)
        assert near > len(distances) * 0.1

    def test_validation(self):
        with pytest.raises(ValueError):
            PrototypeValueGenerator(0)
        with pytest.raises(ValueError):
            PrototypeValueGenerator(10, noise=2.0)


class TestWorkload:
    def test_load_phase_count_and_keys(self):
        wl = YCSBWorkload(WORKLOADS["A"], 50, 0, value_size=16, seed=0)
        records = list(wl.load_phase())
        assert len(records) == 50
        assert records[0][0] == b"user000000000000"
        assert all(len(v) == 16 for _, v in records)

    def test_operation_count(self):
        wl = YCSBWorkload(WORKLOADS["A"], 50, 123, seed=1)
        assert len(list(wl.operations())) == 123

    @pytest.mark.parametrize("name,expected", [
        ("A", {"read", "update"}),
        ("B", {"read", "update"}),
        ("C", {"read"}),
        ("D", {"read", "insert"}),
        ("E", {"scan", "insert"}),
        ("F", {"read", "rmw"}),
    ])
    def test_mix_operations(self, name, expected):
        wl = YCSBWorkload(WORKLOADS[name], 100, 2000, seed=2)
        kinds = Counter(op[0] for op in wl.operations())
        assert set(kinds) <= expected
        # Dominant op matches the spec (>=90% where expected).
        if name in ("B", "D"):
            assert kinds["read"] / 2000 > 0.9
        if name == "E":
            assert kinds["scan"] / 2000 > 0.9

    def test_mix_ratio_a(self):
        wl = YCSBWorkload(WORKLOADS["A"], 100, 4000, seed=3)
        kinds = Counter(op[0] for op in wl.operations())
        assert abs(kinds["read"] / 4000 - 0.5) < 0.05

    def test_inserts_extend_keyspace(self):
        wl = YCSBWorkload(WORKLOADS["D"], 100, 2000, seed=4)
        inserted = [op[1] for op in wl.operations() if op[0] == "insert"]
        assert inserted
        assert inserted[0] == YCSBWorkload.key(100)
        assert len(set(inserted)) == len(inserted)

    def test_reads_reference_existing_keys(self):
        wl = YCSBWorkload(WORKLOADS["D"], 100, 1000, seed=5)
        max_key = 100
        for op in wl.operations():
            if op[0] == "insert":
                max_key += 1
            else:
                index = int(op[1].replace(b"user", b""))
                assert 0 <= index < max_key

    def test_scan_lengths_bounded(self):
        wl = YCSBWorkload(WORKLOADS["E"], 100, 500, seed=6)
        for op in wl.operations():
            if op[0] == "scan":
                assert 1 <= op[2] <= WORKLOADS["E"].max_scan_length

    def test_zipfian_requests_are_skewed(self):
        wl = YCSBWorkload(WORKLOADS["C"], 1000, 5000, seed=7)
        keys = Counter(op[1] for op in wl.operations())
        top = keys.most_common(1)[0][1]
        assert top / 5000 > 0.02

    def test_validation(self):
        with pytest.raises(ValueError):
            YCSBWorkload(WORKLOADS["A"], 0, 10)
        with pytest.raises(ValueError):
            YCSBWorkload(
                WorkloadSpec("x", read=1.0, distribution="normal"), 10, 10
            )
