"""Synthetic dataset tests: shapes, determinism, clusterability, redundancy."""

import numpy as np
import pytest

from repro.util.bits import hamming_distance
from repro.workloads.datasets import (
    bits_to_values,
    cifar_like,
    fashion_mnist_like,
    imagenet_like,
    make_image_dataset,
    mnist_like,
)
from repro.workloads.mixing import DriftSchedule
from repro.workloads.records import (
    amazon_access_like,
    pubmed_like,
    records_to_bits,
    road_network_like,
)
from repro.workloads.video import SyntheticVideo


class TestImageDatasets:
    def test_shape_and_binary(self):
        bits, labels = make_image_dataset(50, 128, n_classes=4, seed=0)
        assert bits.shape == (50, 128)
        assert labels.shape == (50,)
        assert set(np.unique(bits)) <= {0.0, 1.0}

    def test_deterministic(self):
        a, _ = make_image_dataset(20, 64, seed=5)
        b, _ = make_image_dataset(20, 64, seed=5)
        assert np.array_equal(a, b)

    def test_within_class_similarity(self):
        bits, labels = make_image_dataset(100, 256, n_classes=3, noise=0.05, seed=1)
        within, between = [], []
        for i in range(50):
            for j in range(i + 1, 50):
                d = np.abs(bits[i] - bits[j]).sum()
                (within if labels[i] == labels[j] else between).append(d)
        assert np.mean(within) < np.mean(between)

    def test_named_variants_shapes(self):
        assert mnist_like(10)[0].shape == (10, 784)
        assert fashion_mnist_like(10)[0].shape == (10, 784)
        assert cifar_like(10)[0].shape == (10, 1024)
        assert imagenet_like(5)[0].shape == (5, 4096)

    def test_variants_differ(self):
        a, _ = mnist_like(10)
        b, _ = fashion_mnist_like(10)
        assert not np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_image_dataset(0, 10)

    def test_bits_to_values(self):
        bits, _ = make_image_dataset(5, 64, seed=2)
        values = bits_to_values(bits)
        assert len(values) == 5
        assert all(len(v) == 8 for v in values)

    def test_bits_to_values_validation(self):
        with pytest.raises(ValueError):
            bits_to_values(np.zeros((2, 7)))


class TestRecordDatasets:
    @pytest.mark.parametrize("factory,size", [
        (amazon_access_like, 64),
        (road_network_like, 32),
        (pubmed_like, 16),
    ])
    def test_record_sizes(self, factory, size):
        records = factory(100, seed=0)
        assert len(records) == 100
        assert all(len(r) == size for r in records)

    def test_amazon_records_cluster_by_user(self):
        """Rows of the same user share the attribute block: same-user pairs
        are far closer than cross-user pairs (the clusterable structure)."""
        records = amazon_access_like(200, n_users=5, seed=1)
        users = [r[0] for r in records]  # first byte of the packed user id
        same, cross = [], []
        for i in range(80):
            for j in range(i + 1, 80):
                d = hamming_distance(records[i], records[j])
                (same if users[i] == users[j] else cross).append(d)
        assert np.mean(same) < 0.5 * np.mean(cross)

    def test_amazon_zipf_skew(self):
        """A few users dominate the log (zipf-distributed user column)."""
        records = amazon_access_like(500, n_users=12, seed=2)
        users = [r[0] for r in records]
        counts = sorted(
            (users.count(u) for u in set(users)), reverse=True
        )
        assert counts[0] > len(records) * 0.3

    def test_road_network_rows_are_spatially_correlated(self):
        records = road_network_like(50, seed=2)
        adjacent = [
            hamming_distance(records[i], records[i + 1]) for i in range(49)
        ]
        far = [hamming_distance(records[0], records[i]) for i in range(25, 50)]
        assert np.mean(adjacent) <= np.mean(far) + 8

    def test_records_to_bits(self):
        records = pubmed_like(10, seed=3)
        bits = records_to_bits(records)
        assert bits.shape == (10, 128)

    def test_records_to_bits_validation(self):
        with pytest.raises(ValueError):
            records_to_bits([])
        with pytest.raises(ValueError):
            records_to_bits([b"ab", b"abc"])


class TestVideo:
    def test_frame_size(self):
        video = SyntheticVideo(width=32, height=24, seed=0)
        frames = list(video.frames(3))
        assert len(frames) == 3
        assert all(len(f) == 32 * 24 for f in frames)

    def test_consecutive_frames_similar(self):
        """Frame-to-frame redundancy: neighbours differ far less than the
        ~50% of unrelated content (sensor noise in the low-order grayscale
        bits keeps the floor above zero)."""
        video = SyntheticVideo(width=32, height=24, noise=2.0, seed=1)
        frames = list(video.frames(10))
        total_bits = len(frames[0]) * 8
        adjacent = [
            hamming_distance(frames[i], frames[i + 1]) for i in range(9)
        ]
        rng = np.random.default_rng(0)
        random_frame = rng.integers(0, 256, len(frames[0]), dtype=np.uint8)
        unrelated = hamming_distance(frames[0], random_frame.tobytes())
        assert np.mean(adjacent) < 0.35 * total_bits
        assert np.mean(adjacent) < 0.7 * unrelated

    def test_noiseless_frames_nearly_identical(self):
        video = SyntheticVideo(width=32, height=24, noise=0.0, seed=1)
        frames = list(video.frames(10))
        total_bits = len(frames[0]) * 8
        adjacent = [
            hamming_distance(frames[i], frames[i + 1]) for i in range(9)
        ]
        assert np.mean(adjacent) < 0.05 * total_bits

    def test_frames_are_not_identical(self):
        video = SyntheticVideo(width=32, height=24, seed=2)
        frames = list(video.frames(2))
        assert frames[0] != frames[1]

    def test_frame_bits_shape(self):
        video = SyntheticVideo(width=16, height=8, seed=3)
        bits = video.frame_bits(4)
        assert bits.shape == (4, 16 * 8 * 8)

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticVideo(width=2, height=2)
        with pytest.raises(ValueError):
            list(SyntheticVideo().frames(0))


class TestDriftSchedule:
    def test_phases_in_order(self):
        schedule = (
            DriftSchedule()
            .add_phase("one", [b"a", b"b"])
            .add_phase("two", [b"c"], retrain_before=True)
        )
        phases = list(schedule)
        assert [p.name for p in phases] == ["one", "two"]
        assert phases[1].retrain_before
        assert schedule.total_items() == 3

    def test_mixture_ratio(self):
        src_a = [b"A"] * 10
        src_b = [b"B"] * 10
        schedule = DriftSchedule().add_mixture(
            "mix", [src_a, src_b], [2.0, 1.0], n_items=3000, seed=0
        )
        values = schedule.phases[0].values
        frac_a = sum(1 for v in values if v == b"A") / len(values)
        assert abs(frac_a - 2 / 3) < 0.05

    def test_mixture_validation(self):
        with pytest.raises(ValueError):
            DriftSchedule().add_mixture("bad", [[b"a"]], [1.0, 2.0], 10)
