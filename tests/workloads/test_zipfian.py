"""Distribution-generator tests: ranges, skew, growth."""

import numpy as np
import pytest

from repro.workloads.zipfian import (
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
)


def draw(gen, n=5000):
    return np.array([gen.next() for _ in range(n)])


class TestUniform:
    def test_range(self):
        samples = draw(UniformGenerator(10, seed=0))
        assert samples.min() >= 0 and samples.max() < 10

    def test_roughly_flat(self):
        samples = draw(UniformGenerator(10, seed=1), n=20_000)
        counts = np.bincount(samples, minlength=10)
        assert counts.min() > 0.8 * counts.mean()

    def test_grow(self):
        gen = UniformGenerator(5, seed=2)
        gen.grow(50)
        samples = draw(gen)
        assert samples.max() >= 5

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformGenerator(0)
        with pytest.raises(ValueError):
            UniformGenerator(10).grow(5)


class TestZipfian:
    def test_range(self):
        samples = draw(ZipfianGenerator(100, seed=0))
        assert samples.min() >= 0 and samples.max() < 100

    def test_rank_zero_most_popular(self):
        samples = draw(ZipfianGenerator(100, seed=1), n=20_000)
        counts = np.bincount(samples, minlength=100)
        assert counts[0] == counts.max()
        # Popularity decreases over ranks (head vs tail).
        assert counts[:10].sum() > counts[50:60].sum()

    def test_skew_matches_theta(self):
        """With theta=0.99, the hottest item draws a large share."""
        samples = draw(ZipfianGenerator(1000, seed=2), n=20_000)
        counts = np.bincount(samples, minlength=1000)
        assert counts[0] / len(samples) > 0.05

    def test_grow_keeps_distribution_valid(self):
        gen = ZipfianGenerator(50, seed=3)
        gen.grow(100)
        samples = draw(gen)
        assert samples.max() < 100

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(0)
        with pytest.raises(ValueError):
            ZipfianGenerator(10, theta=1.0)


class TestScrambled:
    def test_range(self):
        samples = draw(ScrambledZipfianGenerator(100, seed=4))
        assert samples.min() >= 0 and samples.max() < 100

    def test_hotspot_is_spread(self):
        """Scrambling moves the hottest key away from rank 0 (usually)."""
        samples = draw(ScrambledZipfianGenerator(1000, seed=5), n=10_000)
        counts = np.bincount(samples, minlength=1000)
        assert counts.max() / len(samples) > 0.05  # still skewed
        # Hot keys are spread: the top-10 hottest are not all in 0..9.
        hottest = np.argsort(counts)[-10:]
        assert hottest.max() > 10


class TestLatest:
    def test_skews_to_newest(self):
        gen = LatestGenerator(100, seed=6)
        samples = draw(gen, n=10_000)
        counts = np.bincount(samples, minlength=100)
        assert counts[99] == counts.max()

    def test_grow_shifts_head(self):
        gen = LatestGenerator(100, seed=7)
        gen.grow(200)
        samples = draw(gen, n=10_000)
        counts = np.bincount(samples, minlength=200)
        assert counts[199] == counts.max()
