"""Unit and property tests for the bit-manipulation primitives."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bits import (
    POPCOUNT_TABLE,
    bits_to_bytes,
    bytes_to_bits,
    hamming_bytes,
    hamming_distance,
    popcount_array,
)


class TestPopcount:
    def test_table_matches_bin_count(self):
        for value in range(256):
            assert POPCOUNT_TABLE[value] == bin(value).count("1")

    def test_popcount_array_empty(self):
        assert popcount_array(np.zeros(0, dtype=np.uint8)) == 0

    def test_popcount_array_all_ones(self):
        assert popcount_array(np.full(10, 0xFF, dtype=np.uint8)) == 80

    def test_popcount_array_known(self):
        assert popcount_array(np.array([0b1010, 0b1], dtype=np.uint8)) == 3


class TestHamming:
    def test_identical_is_zero(self):
        a = np.arange(16, dtype=np.uint8)
        assert hamming_bytes(a, a) == 0

    def test_complement_is_all_bits(self):
        a = np.arange(16, dtype=np.uint8)
        assert hamming_bytes(a, np.bitwise_not(a)) == 128

    def test_bytes_interface(self):
        assert hamming_distance(b"\x00", b"\xff") == 8
        assert hamming_distance(b"\x0f\xf0", b"\x00\x00") == 8

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            hamming_distance(b"ab", b"abc")

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            hamming_bytes(np.zeros(2, dtype=np.uint8), np.zeros(3, dtype=np.uint8))

    @given(st.binary(min_size=1, max_size=64), st.binary(min_size=1, max_size=64))
    def test_symmetry(self, a, b):
        n = min(len(a), len(b))
        a, b = a[:n], b[:n]
        assert hamming_distance(a, b) == hamming_distance(b, a)

    @given(
        st.binary(min_size=8, max_size=32),
        st.binary(min_size=8, max_size=32),
        st.binary(min_size=8, max_size=32),
    )
    def test_triangle_inequality(self, a, b, c):
        n = min(len(a), len(b), len(c))
        a, b, c = a[:n], b[:n], c[:n]
        assert hamming_distance(a, c) <= (
            hamming_distance(a, b) + hamming_distance(b, c)
        )

    @given(st.binary(min_size=1, max_size=64))
    def test_distance_to_self_is_zero(self, a):
        assert hamming_distance(a, a) == 0


class TestBitPacking:
    def test_roundtrip_known(self):
        data = b"\xa5\x3c"
        bits = bytes_to_bits(data)
        assert bits.tolist() == [1, 0, 1, 0, 0, 1, 0, 1, 0, 0, 1, 1, 1, 1, 0, 0]
        assert bits_to_bytes(bits) == data

    def test_bits_are_msb_first(self):
        assert bytes_to_bits(b"\x80")[0] == 1.0
        assert bytes_to_bits(b"\x01")[7] == 1.0

    def test_probabilities_threshold(self):
        probs = np.array([0.9, 0.4, 0.6, 0.1, 0.51, 0.49, 1.0, 0.0])
        assert bits_to_bytes(probs) == bytes([0b10101010])

    def test_non_multiple_of_8_raises(self):
        with pytest.raises(ValueError):
            bits_to_bytes(np.ones(7))

    def test_accepts_uint8_array(self):
        arr = np.array([0xFF, 0x00], dtype=np.uint8)
        assert bytes_to_bits(arr).sum() == 8

    @given(st.binary(min_size=1, max_size=256))
    def test_roundtrip_property(self, data):
        assert bits_to_bytes(bytes_to_bits(data)) == data

    @given(st.binary(min_size=1, max_size=256))
    def test_popcount_consistency(self, data):
        bits = bytes_to_bits(data)
        assert int(bits.sum()) == popcount_array(
            np.frombuffer(data, dtype=np.uint8)
        )
