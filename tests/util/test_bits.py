"""Unit and property tests for the bit-manipulation primitives."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

import repro.util.bits as bits_module
from repro.util.bits import (
    POPCOUNT_TABLE,
    bits_to_bytes,
    bytes_to_bits,
    bytes_to_bits_many,
    hamming_bytes,
    hamming_distance,
    popcount_array,
    popcount_rows,
)


class TestPopcount:
    def test_table_matches_bin_count(self):
        for value in range(256):
            assert POPCOUNT_TABLE[value] == bin(value).count("1")

    def test_popcount_array_empty(self):
        assert popcount_array(np.zeros(0, dtype=np.uint8)) == 0

    def test_popcount_array_all_ones(self):
        assert popcount_array(np.full(10, 0xFF, dtype=np.uint8)) == 80

    def test_popcount_array_known(self):
        assert popcount_array(np.array([0b1010, 0b1], dtype=np.uint8)) == 3


class TestPopcountPaths:
    """The ``np.bitwise_count`` fast path and the table fallback must agree."""

    def test_paths_agree_on_random_arrays(self, monkeypatch):
        rng = np.random.default_rng(0)
        for size in (0, 1, 7, 64, 1000):
            arr = rng.integers(0, 256, size=size, dtype=np.uint8)
            fast = popcount_array(arr)
            with monkeypatch.context() as m:
                m.setattr(bits_module, "HAVE_BITWISE_COUNT", False)
                slow = popcount_array(arr)
            expected = sum(bin(v).count("1") for v in arr.tolist())
            assert fast == slow == expected

    def test_rows_paths_agree_on_random_matrices(self, monkeypatch):
        rng = np.random.default_rng(1)
        matrix = rng.integers(0, 256, size=(13, 37), dtype=np.uint8)
        fast = popcount_rows(matrix)
        with monkeypatch.context() as m:
            m.setattr(bits_module, "HAVE_BITWISE_COUNT", False)
            slow = popcount_rows(matrix)
        expected = [popcount_array(row) for row in matrix]
        assert fast.tolist() == slow.tolist() == expected

    def test_popcount_rows_single_row(self):
        row = np.array([0b1010, 0xFF], dtype=np.uint8)
        assert popcount_rows(row).tolist() == [10]


class TestBytesToBitsMany:
    def test_matches_single_conversion_mixed_lengths(self):
        rng = np.random.default_rng(2)
        values = [
            rng.integers(0, 256, size=int(n), dtype=np.uint8).tobytes()
            for n in rng.integers(1, 40, size=9)
        ]
        many = bytes_to_bits_many(values)
        assert len(many) == len(values)
        for value, row in zip(values, many):
            assert row.dtype == np.float32
            np.testing.assert_array_equal(row, bytes_to_bits(value))

    def test_empty_batch(self):
        assert bytes_to_bits_many([]) == []


class TestHamming:
    def test_identical_is_zero(self):
        a = np.arange(16, dtype=np.uint8)
        assert hamming_bytes(a, a) == 0

    def test_complement_is_all_bits(self):
        a = np.arange(16, dtype=np.uint8)
        assert hamming_bytes(a, np.bitwise_not(a)) == 128

    def test_bytes_interface(self):
        assert hamming_distance(b"\x00", b"\xff") == 8
        assert hamming_distance(b"\x0f\xf0", b"\x00\x00") == 8

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            hamming_distance(b"ab", b"abc")

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            hamming_bytes(np.zeros(2, dtype=np.uint8), np.zeros(3, dtype=np.uint8))

    @given(st.binary(min_size=1, max_size=64), st.binary(min_size=1, max_size=64))
    def test_symmetry(self, a, b):
        n = min(len(a), len(b))
        a, b = a[:n], b[:n]
        assert hamming_distance(a, b) == hamming_distance(b, a)

    @given(
        st.binary(min_size=8, max_size=32),
        st.binary(min_size=8, max_size=32),
        st.binary(min_size=8, max_size=32),
    )
    def test_triangle_inequality(self, a, b, c):
        n = min(len(a), len(b), len(c))
        a, b, c = a[:n], b[:n], c[:n]
        assert hamming_distance(a, c) <= (
            hamming_distance(a, b) + hamming_distance(b, c)
        )

    @given(st.binary(min_size=1, max_size=64))
    def test_distance_to_self_is_zero(self, a):
        assert hamming_distance(a, a) == 0


class TestBitPacking:
    def test_roundtrip_known(self):
        data = b"\xa5\x3c"
        bits = bytes_to_bits(data)
        assert bits.tolist() == [1, 0, 1, 0, 0, 1, 0, 1, 0, 0, 1, 1, 1, 1, 0, 0]
        assert bits_to_bytes(bits) == data

    def test_bits_are_msb_first(self):
        assert bytes_to_bits(b"\x80")[0] == 1.0
        assert bytes_to_bits(b"\x01")[7] == 1.0

    def test_probabilities_threshold(self):
        probs = np.array([0.9, 0.4, 0.6, 0.1, 0.51, 0.49, 1.0, 0.0])
        assert bits_to_bytes(probs) == bytes([0b10101010])

    def test_non_multiple_of_8_raises(self):
        with pytest.raises(ValueError):
            bits_to_bytes(np.ones(7))

    def test_accepts_uint8_array(self):
        arr = np.array([0xFF, 0x00], dtype=np.uint8)
        assert bytes_to_bits(arr).sum() == 8

    @given(st.binary(min_size=1, max_size=256))
    def test_roundtrip_property(self, data):
        assert bits_to_bytes(bytes_to_bits(data)) == data

    @given(st.binary(min_size=1, max_size=256))
    def test_popcount_consistency(self, data):
        bits = bytes_to_bits(data)
        assert int(bits.sum()) == popcount_array(
            np.frombuffer(data, dtype=np.uint8)
        )
