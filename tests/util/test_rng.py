"""RNG helper tests."""

import numpy as np

from repro.util.rng import rng_from_seed


class TestRngFromSeed:
    def test_int_seed_is_deterministic(self):
        a = rng_from_seed(42).random(5)
        b = rng_from_seed(42).random(5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert rng_from_seed(gen) is gen

    def test_none_gives_fresh_generator(self):
        gen = rng_from_seed(None)
        assert isinstance(gen, np.random.Generator)

    def test_shared_stream_advances(self):
        gen = np.random.default_rng(7)
        first = rng_from_seed(gen).random()
        second = rng_from_seed(gen).random()
        assert first != second
