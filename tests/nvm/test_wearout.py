"""Wear-out model tests: endurance budgets, stuck-at failure, accelerated
aging, lifetime estimates and snapshot round-trips."""

import numpy as np
import pytest

from repro.nvm import NVMDevice, WearOutConfig
from repro.testing import FaultInjector


def worn_device(
    n_segments: int = 8,
    segment_size: int = 32,
    wearout: WearOutConfig | None = None,
    **kwargs,
) -> NVMDevice:
    return NVMDevice(
        capacity_bytes=n_segments * segment_size,
        segment_size=segment_size,
        wearout=wearout or WearOutConfig(endurance_mean=4, seed=1),
        **kwargs,
    )


class TestBudgets:
    def test_budgets_deterministic_per_seed(self):
        a = worn_device(wearout=WearOutConfig(endurance_mean=10, seed=3))
        b = worn_device(wearout=WearOutConfig(endurance_mean=10, seed=3))
        c = worn_device(wearout=WearOutConfig(endurance_mean=10, seed=4))
        assert np.array_equal(a._endurance_budget, b._endurance_budget)
        assert not np.array_equal(a._endurance_budget, c._endurance_budget)

    def test_budgets_at_least_one_cycle(self):
        dev = worn_device(
            wearout=WearOutConfig(endurance_mean=1, endurance_sigma=2.0)
        )
        assert int(dev._endurance_budget.min()) >= 1

    def test_immortal_prefix(self):
        cfg = WearOutConfig(
            endurance_mean=2, endurance_sigma=0.0, immortal_prefix_segments=2
        )
        dev = worn_device(wearout=cfg)
        prefix_bits = 2 * dev.segment_size * 8
        assert int(dev._endurance_budget[:prefix_bits].min()) > 10**15
        assert int(dev._endurance_budget[prefix_bits:].max()) <= 4

    def test_immortal_prefix_out_of_range(self):
        with pytest.raises(ValueError, match="immortal_prefix_segments"):
            worn_device(
                wearout=WearOutConfig(
                    endurance_mean=2, immortal_prefix_segments=99
                )
            )

    def test_endurance_mean_validated(self):
        with pytest.raises(ValueError, match="endurance_mean"):
            worn_device(wearout=WearOutConfig(endurance_mean=0))

    def test_no_wearout_means_no_state(self):
        dev = NVMDevice(capacity_bytes=256, segment_size=32)
        assert dev.ecc is None and dev.health is None
        assert dev.stuck_cell_count() == 0
        assert not dev.stuck_mask(0, 32).any()


class TestStuckAt:
    def one_shot_device(self):
        """Every cell dies after exactly one program pulse."""
        return worn_device(
            wearout=WearOutConfig(endurance_mean=1, endurance_sigma=0.0)
        )

    def test_killing_pulse_still_lands(self):
        dev = self.one_shot_device()
        ones = b"\xff" * 32
        dev.program(0, ones)
        assert dev.read(0, 32) == ones

    def test_stuck_cells_silently_keep_their_value(self):
        dev = self.one_shot_device()
        ones = b"\xff" * 32
        dev.program(0, ones)
        dev.program(0, b"\x00" * 32)  # every cell is stuck by now
        assert dev.read(0, 32) == ones

    def test_stuck_mask_and_count(self):
        dev = self.one_shot_device()
        assert dev.stuck_cell_count() == 0
        dev.program(0, b"\xaa" * 32)
        assert dev.stuck_cell_count() == 32 * 8
        assert np.array_equal(
            dev.stuck_mask(0, 32), np.full(32, 0xFF, dtype=np.uint8)
        )
        assert not dev.stuck_mask(32, 32).any()

    def test_unmasked_cells_keep_their_budget(self):
        dev = self.one_shot_device()
        mask = np.zeros(32, dtype=np.uint8)
        mask[0] = 0xFF
        dev.program(0, b"\x55" * 32, program_mask=mask)
        assert dev.stuck_cell_count() == 8  # only the masked byte died

    def test_stuck_at_site_fires_after_marking(self):
        faults = FaultInjector()
        dev = worn_device(
            wearout=WearOutConfig(endurance_mean=1, endurance_sigma=0.0),
            faults=faults,
        )
        faults.arm("device.stuck_at", error=RuntimeError("crash"))
        with pytest.raises(RuntimeError):
            dev.program(0, b"\xff" * 32)
        # Media and wear state are already consistent at the crash point:
        # the pulse landed and the dead cells are marked stuck.
        assert dev.read(0, 32) == b"\xff" * 32
        assert dev.stuck_cell_count() == 32 * 8

    def test_stuck_at_site_quiet_without_new_deaths(self):
        faults = FaultInjector()
        dev = worn_device(
            wearout=WearOutConfig(endurance_mean=100, endurance_sigma=0.0),
            faults=faults,
        )
        dev.program(0, b"\xff" * 32)
        assert faults.hits("device.stuck_at") == 0


class TestAcceleratedAging:
    def test_age_kills_and_reports(self):
        dev = worn_device(
            wearout=WearOutConfig(endurance_mean=50, endurance_sigma=0.0)
        )
        assert dev.age(10) == 0
        killed = dev.age(100)
        assert killed == dev.capacity_bytes * 8
        assert dev.stuck_cell_count() == killed
        assert dev.age(5) == 0  # already dead cells are not re-counted

    def test_age_preserves_content_and_stats(self):
        dev = worn_device()
        dev.program(0, b"\x42" * 32)
        before = dev.peek(0, dev.capacity_bytes).copy()
        writes = dev.stats.writes
        dev.age(10**6)
        assert np.array_equal(dev.peek(0, dev.capacity_bytes), before)
        assert dev.stats.writes == writes

    def test_aged_cells_are_stuck_at_current_value(self):
        dev = worn_device()
        payload = b"\x5a" * 32
        dev.program(0, payload)
        dev.age(10**6)
        dev.program(0, b"\xa5" * 32)
        assert dev.read(0, 32) == payload

    def test_age_requires_wearout_model(self):
        dev = NVMDevice(capacity_bytes=256, segment_size=32)
        with pytest.raises(RuntimeError, match="wearout"):
            dev.age(1)

    def test_age_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            worn_device().age(-1)


class TestWearSummary:
    def test_fallback_basis_is_segment_writes(self):
        dev = NVMDevice(capacity_bytes=256, segment_size=32)
        dev.program(0, b"\x01" * 32)
        dev.program(0, b"\x02" * 32)
        summary = dev.wear_summary(endurance=100)
        assert summary["lifetime_estimate_basis"] == "segment_writes"
        assert summary["segment_writes_max"] == 2
        assert summary["lifetime_consumed"] == pytest.approx(0.02)
        assert "stuck_cells" not in summary

    def test_bit_wear_basis_when_tracked(self):
        dev = NVMDevice(
            capacity_bytes=256, segment_size=32, track_bit_wear=True
        )
        dev.program(0, b"\xff" * 32)
        summary = dev.wear_summary(endurance=10)
        assert summary["lifetime_estimate_basis"] == "bit_wear"
        assert summary["bit_wear_max"] == 1
        assert summary["lifetime_consumed"] == pytest.approx(0.1)

    def test_stuck_cells_reported_with_wearout(self):
        dev = worn_device(
            wearout=WearOutConfig(endurance_mean=1, endurance_sigma=0.0)
        )
        dev.program(0, b"\xff" * 32)
        assert dev.wear_summary()["stuck_cells"] == 32 * 8


class TestSnapshotRoundTrip:
    def test_wearout_state_survives_save_load(self, tmp_path):
        cfg = WearOutConfig(
            endurance_mean=3,
            endurance_sigma=0.4,
            seed=9,
            ecp_entries=2,
            immortal_prefix_segments=1,
        )
        dev = worn_device(wearout=cfg)
        for i in range(6):
            dev.program(32, bytes([i * 37 % 256]) * 32)
        dev.ecc.record(1, [5, 9], [1, 0])
        dev.health.retired.add(3)
        dev.health.retiring.add(4)
        dev.health.spares.extend([160, 192])

        path = tmp_path / "snap.npz"
        dev.save(path)
        loaded = NVMDevice.load(path)

        assert loaded.wearout == cfg
        assert np.array_equal(loaded._endurance_budget, dev._endurance_budget)
        assert np.array_equal(loaded._wear_count, dev._wear_count)
        assert np.array_equal(loaded._stuck_packed, dev._stuck_packed)
        assert np.array_equal(
            loaded.peek(0, loaded.capacity_bytes),
            dev.peek(0, dev.capacity_bytes),
        )
        for got, want in zip(
            loaded.ecc.state_arrays(), dev.ecc.state_arrays()
        ):
            assert np.array_equal(got, want)
        assert loaded.health.retired == {3}
        assert loaded.health.retiring == {4}
        assert loaded.health.spares == [160, 192]

    def test_dead_cells_stay_dead_after_load(self, tmp_path):
        dev = worn_device(
            wearout=WearOutConfig(endurance_mean=1, endurance_sigma=0.0)
        )
        payload = b"\x3c" * 32
        dev.program(0, payload)
        path = tmp_path / "snap.npz"
        dev.save(path)
        loaded = NVMDevice.load(path)
        loaded.program(0, b"\xc3" * 32)  # must silently fail: cells stuck
        assert loaded.read(0, 32) == payload

    def test_immortal_device_snapshot_has_no_wear_state(self, tmp_path):
        dev = NVMDevice(capacity_bytes=256, segment_size=32)
        path = tmp_path / "snap.npz"
        dev.save(path)
        loaded = NVMDevice.load(path)
        assert loaded.wearout is None
        assert loaded.ecc is None and loaded.health is None
