"""DeviceStats arithmetic and derived metrics."""

import pytest

from repro.nvm.stats import DeviceStats


class TestDeviceStats:
    def test_snapshot_is_independent(self):
        stats = DeviceStats(writes=3)
        snap = stats.snapshot()
        stats.writes = 10
        assert snap.writes == 3

    def test_subtraction(self):
        a = DeviceStats(writes=10, bits_programmed=100, write_energy_pj=5.0)
        b = DeviceStats(writes=4, bits_programmed=30, write_energy_pj=2.0)
        d = a - b
        assert d.writes == 6
        assert d.bits_programmed == 70
        assert d.write_energy_pj == pytest.approx(3.0)

    def test_addition(self):
        a = DeviceStats(reads=2, read_energy_pj=1.5)
        b = DeviceStats(reads=3, read_energy_pj=2.5)
        c = a + b
        assert c.reads == 5
        assert c.read_energy_pj == pytest.approx(4.0)

    def test_total_energy(self):
        s = DeviceStats(write_energy_pj=3.0, read_energy_pj=4.0)
        assert s.total_energy_pj == pytest.approx(7.0)

    def test_per_write_averages(self):
        s = DeviceStats(writes=4, bits_programmed=100, write_energy_pj=200.0)
        assert s.bits_programmed_per_write == pytest.approx(25.0)
        assert s.energy_per_write_pj == pytest.approx(50.0)

    def test_per_write_averages_empty(self):
        s = DeviceStats()
        assert s.bits_programmed_per_write == 0.0
        assert s.energy_per_write_pj == 0.0


class TestLatencyModel:
    def test_latency_monotonicity(self):
        from repro.nvm.latency import LatencyModel

        model = LatencyModel()
        assert model.write_latency(256, 2000, 4) > model.write_latency(256, 0, 0)
        assert model.read_latency(256) > model.read_latency(64)

    def test_latency_validation(self):
        from repro.nvm.latency import LatencyModel

        model = LatencyModel()
        with pytest.raises(ValueError):
            model.write_latency(0, 0, 0)
        with pytest.raises(ValueError):
            model.read_latency(-1)
