"""Background scrubber: healing, priority order, worker lifecycle."""

import threading
import time

import numpy as np
import pytest

from repro.core.config import fast_test_config
from repro.core.kvstore import KVStore
from repro.nvm import (
    DriftConfig,
    MemoryController,
    NVMDevice,
    Scrubber,
)
from repro.pmem.catalog import PersistentCatalog
from repro.pmem.pool import PersistentPool
from repro.testing import FaultInjector

SEGMENT = 64
N_SEGMENTS = 48
LOG_SEGMENTS = 4
KEY_CAPACITY = 16

_PIPELINE = {}


def make_store(retention_mean=10, *, faults=None, seed=7):
    meta = PersistentCatalog.meta_segments_for(
        N_SEGMENTS, LOG_SEGMENTS, SEGMENT, KEY_CAPACITY
    )
    device = NVMDevice(
        capacity_bytes=N_SEGMENTS * SEGMENT,
        segment_size=SEGMENT,
        initial_fill="random",
        seed=seed,
        faults=faults,
        drift=DriftConfig(
            retention_mean=retention_mean,
            retention_sigma=0.3,
            seed=3,
            immortal_prefix_segments=LOG_SEGMENTS + meta,
        ),
    )
    pool = PersistentPool(
        MemoryController(device),
        log_segments=LOG_SEGMENTS,
        meta_segments=meta,
        faults=faults,
    )
    store = KVStore.create(
        pool,
        config=fast_test_config(),
        faults=faults,
        key_capacity=KEY_CAPACITY,
        pipeline=_PIPELINE.get("pipeline"),
    )
    _PIPELINE.setdefault("pipeline", store.engine.pipeline)
    return store


def fill(store, n_keys=8, seed=5):
    rng = np.random.default_rng(seed)
    oracle = {}
    for i in range(n_keys):
        key = b"k%02d" % i
        value = rng.integers(0, 256, 48, dtype=np.uint8).tobytes()
        store.put(key, value)
        oracle[key] = value
    return oracle


class TestScrubbing:
    def test_scrub_segment_heals_drift(self):
        store = make_store()
        oracle = fill(store)
        scrubber = Scrubber(store, segments_per_round=N_SEGMENTS)
        device = store.engine.controller.device
        device.advance_time(100)
        assert device.drifted_cell_count() > 0
        summary = scrubber.scrub_round()
        assert summary["bits_healed"] > 0
        assert scrubber.stats.refresh_writes > 0
        # Every live value is clean again: a full sweep heals nothing new.
        assert scrubber.scrub_round()["bits_healed"] == 0
        for key, value in oracle.items():
            assert store.get(key) == value

    def test_scrub_segment_skips_dead_segments(self):
        store = make_store()
        fill(store, n_keys=2)
        scrubber = Scrubber(store)
        # A segment nobody owns heals nothing and writes nothing.
        free_addr = store.pool.free_addresses()[0]
        assert scrubber.scrub_segment(free_addr // SEGMENT) == 0
        assert scrubber.stats.refresh_writes == 0

    def test_rate_limit_and_backlog(self):
        store = make_store(retention_mean=10**6)
        fill(store, n_keys=8)
        scrubber = Scrubber(store, segments_per_round=3)
        summary = scrubber.scrub_round()
        assert summary["segments_scrubbed"] == 3
        assert summary["backlog"] == 5
        assert scrubber.stats.backlog == 5

    def test_round_order_prefers_least_recently_scrubbed(self):
        store = make_store(retention_mean=10**6)
        fill(store, n_keys=6)
        scrubber = Scrubber(store, segments_per_round=3)
        scrubber.scrub_round()
        first = set(scrubber._last_scrubbed)
        scrubber.scrub_round()
        second = set(scrubber._last_scrubbed) - first
        # Two rounds of 3 cover all 6 live segments exactly once each.
        assert len(first) == 3 and len(second) == 3
        assert not (first & second)

    def test_escalates_repeat_offenders(self):
        store = make_store(retention_mean=10**6)
        fill(store, n_keys=1)
        scrubber = Scrubber(store, escalate_after=2)
        device = store.engine.controller.device
        [addr] = [a for a, k in store._by_addr.items() if k is not None]
        segment = addr // SEGMENT

        class _AlwaysDrifty:
            """Pretend the margin read keeps finding drift."""

            def __init__(self, controller):
                self._real = controller.drift_mask

            def __call__(self, a, length):
                mask = self._real(a, length)
                mask[0] |= 0x80
                return mask

        store.engine.controller.drift_mask = _AlwaysDrifty(
            store.engine.controller
        )
        health = store.engine.controller.health_manager
        assert health is None or not health._pending_set
        scrubber.scrub_segment(segment)
        assert scrubber.stats.escalations == 0
        scrubber.scrub_segment(segment)
        # No health manager on an immortal device: escalation is a no-op
        # but the streak bookkeeping still resets.
        assert scrubber._dirty_streak[segment] == 0
        del device

    def test_validates_parameters(self):
        store = make_store(retention_mean=10**6)
        with pytest.raises(ValueError):
            Scrubber(store, segments_per_round=0)
        with pytest.raises(ValueError):
            Scrubber(store, escalate_after=0)


class TestWorkerLifecycle:
    def test_start_is_single_flight_and_stop_joins(self):
        store = make_store(retention_mean=10**6)
        fill(store, n_keys=2)
        scrubber = Scrubber(store, interval_s=0.001)
        thread = scrubber.start()
        assert scrubber.start() is thread  # idempotent
        assert scrubber.running
        deadline = time.monotonic() + 5
        while scrubber.stats.rounds == 0 and time.monotonic() < deadline:
            time.sleep(0.002)
        scrubber.stop()
        assert not scrubber.running
        assert scrubber.stats.rounds > 0

    def test_pause_gates_rounds_resume_lifts(self):
        store = make_store(retention_mean=10**6)
        fill(store, n_keys=2)
        scrubber = Scrubber(store, interval_s=0.001)
        scrubber.pause()
        scrubber.start()
        assert scrubber.paused
        time.sleep(0.02)
        assert scrubber.stats.rounds == 0  # gated before the first round
        scrubber.resume()
        deadline = time.monotonic() + 5
        while scrubber.stats.rounds == 0 and time.monotonic() < deadline:
            time.sleep(0.002)
        scrubber.stop()
        assert scrubber.stats.rounds > 0

    def test_worker_survives_round_exceptions(self):
        store = make_store(retention_mean=10**6)
        fill(store, n_keys=2)
        scrubber = Scrubber(store, interval_s=0.001)
        boom = RuntimeError("round blew up")
        fired = threading.Event()
        original = scrubber.scrub_round

        def exploding_round():
            if not fired.is_set():
                fired.set()
                raise boom
            return original()

        scrubber.scrub_round = exploding_round
        scrubber.start()
        deadline = time.monotonic() + 5
        while scrubber.stats.rounds == 0 and time.monotonic() < deadline:
            time.sleep(0.002)
        scrubber.stop()
        assert scrubber.stats.worker_errors >= 1
        assert scrubber.last_error is boom
        assert scrubber.stats.rounds > 0  # kept going after the failure

    def test_telemetry_reports_state(self):
        store = make_store(retention_mean=10**6)
        scrubber = Scrubber(store)
        telemetry = scrubber.telemetry()
        assert telemetry["running"] is False
        assert telemetry["paused"] is False
        assert telemetry["rounds"] == 0
        assert set(telemetry) >= {
            "bits_healed",
            "refresh_writes",
            "corruptions_found",
            "escalations",
            "worker_errors",
            "backlog",
        }

    def test_scrub_refresh_site_fires(self):
        faults = FaultInjector()
        store = make_store(faults=faults)
        fill(store, n_keys=2)
        scrubber = Scrubber(store, faults=faults)
        store.engine.controller.device.advance_time(100)
        scrubber.scrub_round()
        assert faults.hits("scrub.refresh") >= 2
