"""Controller tests: scheme integration, mapping, boundary checks."""

import numpy as np
import pytest

from repro.baselines import DCW, FNW, NaiveWrite
from repro.nvm.controller import MemoryController
from repro.nvm.device import NVMDevice


def make(scheme=None, **kwargs):
    defaults = dict(
        capacity_bytes=16 * 64, segment_size=64, initial_fill="random", seed=4
    )
    defaults.update(kwargs)
    dev = NVMDevice(**defaults)
    return MemoryController(dev, scheme=scheme), dev


class TestControllerBasics:
    def test_default_scheme_is_dcw(self):
        controller, _ = make()
        assert isinstance(controller.scheme, DCW)

    def test_write_read_roundtrip(self):
        controller, _ = make()
        data = bytes(range(64))
        controller.write(0, data)
        assert controller.read(0, 64) == data

    def test_partial_segment_write(self):
        controller, _ = make()
        controller.write(10, b"hello")
        assert controller.read(10, 5) == b"hello"

    def test_cross_segment_write_raises(self):
        controller, _ = make()
        with pytest.raises(ValueError):
            controller.write(60, bytes(10))

    def test_out_of_range_segment_raises(self):
        controller, _ = make()
        with pytest.raises(IndexError):
            controller.write(16 * 64, bytes(4))

    def test_segment_address(self):
        controller, _ = make()
        assert controller.segment_address(3) == 192
        with pytest.raises(IndexError):
            controller.segment_address(16)

    def test_peek_matches_read_without_accounting(self):
        controller, dev = make()
        controller.write(0, bytes(range(64)))
        reads_before = dev.stats.reads
        assert controller.peek(0, 64).tobytes() == controller.read(0, 64)
        # peek added nothing; the read added one.
        assert dev.stats.reads == reads_before + 1

    def test_bytes_and_arrays_accepted(self):
        controller, _ = make()
        controller.write(0, np.arange(8, dtype=np.uint8))
        assert controller.read(0, 8) == bytes(range(8))
        with pytest.raises(TypeError):
            controller.write(0, np.arange(8, dtype=np.int64))


class TestSchemeIntegration:
    def test_dcw_repeat_write_programs_nothing(self):
        controller, dev = make(scheme=DCW())
        data = bytes(range(64))
        controller.write(0, data)
        before = dev.stats.bits_programmed
        controller.write(0, data)
        assert dev.stats.bits_programmed == before

    def test_naive_repeat_write_programs_everything(self):
        controller, dev = make(scheme=NaiveWrite())
        data = bytes(range(64))
        controller.write(0, data)
        before = dev.stats.bits_programmed
        controller.write(0, data)
        assert dev.stats.bits_programmed == before + 512

    def test_fnw_never_programs_more_than_dcw_plus_flags(self):
        rng = np.random.default_rng(0)
        c_dcw, d_dcw = make(scheme=DCW(), seed=8)
        c_fnw, d_fnw = make(scheme=FNW(word_bytes=4), seed=8)
        for _ in range(30):
            addr = int(rng.integers(0, 16)) * 64
            data = rng.integers(0, 256, 64, dtype=np.uint8).tobytes()
            c_dcw.write(addr, data)
            c_fnw.write(addr, data)
        fnw_total = d_fnw.stats.bits_programmed + d_fnw.stats.aux_bits_programmed
        dcw_total = d_dcw.stats.bits_programmed
        # FNW's per-word decision includes the flag cost, so including flags
        # it can never exceed DCW.
        assert fnw_total <= dcw_total

    def test_rbw_read_is_accounted(self):
        controller, dev = make()
        reads_before = dev.stats.reads
        controller.write(0, bytes(64))
        # The scheme's read-before-write costs one device read.
        assert dev.stats.reads == reads_before + 1

    def test_fnw_decode_after_unrelated_writes(self):
        controller, _ = make(scheme=FNW())
        a = bytes([0xFF] * 64)
        b = bytes([0x00] * 64)
        controller.write(0, a)
        controller.write(64, b)
        controller.write(128, bytes(range(64)))
        assert controller.read(0, 64) == a
        assert controller.read(64, 64) == b
