"""Batched device/controller operations vs their sequential equivalents.

``read_arrays``/``program_many``/``write_many`` must account exactly like a
loop of their scalar counterparts: same WriteResults, same stats counters,
same media content, same wear counters.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.nvm import MemoryController, NVMDevice
from repro.nvm.wear_leveling import SegmentSwapWearLeveling

SEGMENT_SIZE = 64
N_SEGMENTS = 24


def _device(**kwargs) -> NVMDevice:
    return NVMDevice(
        capacity_bytes=N_SEGMENTS * SEGMENT_SIZE,
        segment_size=SEGMENT_SIZE,
        initial_fill="random",
        seed=5,
        **kwargs,
    )


def _assert_stats_equal(a, b):
    for field in dataclasses.fields(a):
        va, vb = getattr(a, field.name), getattr(b, field.name)
        if isinstance(va, float):
            assert va == pytest.approx(vb, rel=1e-12), field.name
        else:
            assert va == vb, field.name


class TestReadArrays:
    def test_matches_read_array_loop(self):
        batched, sequential = _device(), _device()
        addrs = [0, 192, 64, 512]
        rows = batched.read_arrays(addrs, SEGMENT_SIZE)
        expected = np.stack(
            [sequential.read_array(a, SEGMENT_SIZE) for a in addrs]
        )
        np.testing.assert_array_equal(rows, expected)
        _assert_stats_equal(batched.stats, sequential.stats)

    def test_out_of_range_raises(self):
        device = _device()
        with pytest.raises(IndexError):
            device.read_arrays([0, device.capacity_bytes], 8)


class TestProgramMany:
    def _batch(self, rng, n_rows):
        addrs = rng.choice(N_SEGMENTS, size=n_rows, replace=False) * SEGMENT_SIZE
        new = rng.integers(0, 256, size=(n_rows, SEGMENT_SIZE), dtype=np.uint8)
        masks = rng.integers(0, 256, size=(n_rows, SEGMENT_SIZE), dtype=np.uint8)
        aux = rng.integers(0, 5, size=n_rows)
        return addrs.astype(np.int64), new, masks, aux

    def test_matches_sequential_program(self):
        batched = _device(track_bit_wear=True)
        sequential = _device(track_bit_wear=True)
        rng = np.random.default_rng(9)
        addrs, new, masks, aux = self._batch(rng, 6)

        got = batched.program_many(addrs, new, masks, aux)
        expected = [
            sequential.program(int(a), new[i], masks[i], int(aux[i]))
            for i, a in enumerate(addrs)
        ]
        assert got == expected
        _assert_stats_equal(batched.stats, sequential.stats)
        np.testing.assert_array_equal(
            batched.peek(0, batched.capacity_bytes),
            sequential.peek(0, sequential.capacity_bytes),
        )
        np.testing.assert_array_equal(
            batched.segment_write_count, sequential.segment_write_count
        )
        np.testing.assert_array_equal(batched.bit_wear, sequential.bit_wear)

    def test_default_mask_programs_everything(self):
        batched, sequential = _device(), _device()
        rng = np.random.default_rng(11)
        addrs = np.array([0, SEGMENT_SIZE * 3], dtype=np.int64)
        new = rng.integers(0, 256, size=(2, SEGMENT_SIZE), dtype=np.uint8)
        got = batched.program_many(addrs, new)
        expected = [
            sequential.program(int(a), new[i]) for i, a in enumerate(addrs)
        ]
        assert got == expected

    def test_unaligned_rows_match_sequential(self):
        # Rows not aligned to cache lines exercise the per-row
        # dirty-line fallback.
        batched, sequential = _device(), _device()
        rng = np.random.default_rng(13)
        addrs = np.array([3, 200, 530], dtype=np.int64)
        new = rng.integers(0, 256, size=(3, 17), dtype=np.uint8)
        masks = rng.integers(0, 256, size=(3, 17), dtype=np.uint8)
        got = batched.program_many(addrs, new, masks)
        expected = [
            sequential.program(int(a), new[i], masks[i])
            for i, a in enumerate(addrs)
        ]
        assert got == expected
        _assert_stats_equal(batched.stats, sequential.stats)

    def test_overlapping_rows_raise(self):
        device = _device()
        new = np.zeros((2, SEGMENT_SIZE), dtype=np.uint8)
        with pytest.raises(ValueError, match="must not overlap"):
            device.program_many([0, SEGMENT_SIZE // 2], new)

    def test_empty_batch(self):
        device = _device()
        assert device.program_many(
            np.empty(0, dtype=np.int64),
            np.empty((0, SEGMENT_SIZE), dtype=np.uint8),
        ) == []


class TestControllerWriteMany:
    def test_matches_sequential_write(self):
        batched = MemoryController(_device())
        sequential = MemoryController(_device())
        rng = np.random.default_rng(17)
        addrs = [i * SEGMENT_SIZE for i in (0, 4, 9, 2)]
        values = [
            rng.integers(0, 256, size=SEGMENT_SIZE, dtype=np.uint8).tobytes()
            for _ in addrs
        ]
        got = batched.write_many(addrs, values)
        expected = [
            sequential.write(a, v) for a, v in zip(addrs, values)
        ]
        assert got == expected
        _assert_stats_equal(batched.stats, sequential.stats)
        for addr in addrs:
            assert batched.read(addr, SEGMENT_SIZE) == sequential.read(
                addr, SEGMENT_SIZE
            )

    def test_duplicate_segment_falls_back_to_sequential(self):
        # The same segment twice in one batch is order-dependent (the second
        # write's old content is the first write's output) and must take the
        # scalar path.
        batched = MemoryController(_device())
        sequential = MemoryController(_device())
        addrs = [0, 0]
        values = [b"a" * SEGMENT_SIZE, b"b" * SEGMENT_SIZE]
        got = batched.write_many(addrs, values)
        expected = [sequential.write(a, v) for a, v in zip(addrs, values)]
        assert got == expected
        assert batched.read(0, SEGMENT_SIZE) == b"b" * SEGMENT_SIZE

    def test_wear_leveling_falls_back_to_sequential(self):
        # An active remapper may remap mid-batch; write_many must produce
        # exactly what the sequential loop produces.
        make = lambda: MemoryController(
            _device(), wear_leveling=SegmentSwapWearLeveling(period=2)
        )
        batched, sequential = make(), make()
        rng = np.random.default_rng(19)
        addrs = [i * SEGMENT_SIZE for i in (1, 3, 5, 7)]
        values = [
            rng.integers(0, 256, size=SEGMENT_SIZE, dtype=np.uint8).tobytes()
            for _ in addrs
        ]
        got = batched.write_many(addrs, values)
        expected = [sequential.write(a, v) for a, v in zip(addrs, values)]
        assert got == expected
        for addr in addrs:
            assert batched.read(addr, SEGMENT_SIZE) == sequential.read(
                addr, SEGMENT_SIZE
            )

    def test_length_mismatch_raises(self):
        controller = MemoryController(_device())
        with pytest.raises(ValueError, match="must match"):
            controller.write_many([0], [b"a", b"b"])

    def test_empty(self):
        controller = MemoryController(_device())
        assert controller.write_many([], []) == []
