"""Resistance-drift model: clock, budgets, sensing overlay, write refresh."""

import numpy as np
import pytest

from repro.nvm import DriftConfig, MemoryController, NVMDevice
from repro.testing import FaultInjector
from repro.util.bits import popcount_array

SEGMENT = 64


def make_drift_device(
    retention_mean=10, n_segments=8, *, seed=7, track_bit_wear=False, **cfg
):
    return NVMDevice(
        capacity_bytes=n_segments * SEGMENT,
        segment_size=SEGMENT,
        initial_fill="random",
        seed=seed,
        track_bit_wear=track_bit_wear,
        drift=DriftConfig(
            retention_mean=retention_mean, retention_sigma=0.3, seed=3, **cfg
        ),
    )


class TestClockAndBudgets:
    def test_clock_starts_at_zero_and_advances(self):
        device = make_drift_device()
        assert device.clock == 0
        assert device.advance_time(0) == 0
        device.advance_time(3)
        device.advance_time(4)
        assert device.clock == 7

    def test_advance_time_requires_drift_model(self):
        device = NVMDevice(capacity_bytes=8 * SEGMENT, segment_size=SEGMENT)
        with pytest.raises(RuntimeError, match="drift model"):
            device.advance_time(1)
        # The margin read degrades gracefully instead: all clean.
        assert not device.drift_mask(0, SEGMENT).any()
        assert device.drifted_cell_count() == 0

    def test_negative_ticks_rejected(self):
        with pytest.raises(ValueError):
            make_drift_device().advance_time(-1)

    def test_budgets_are_deterministic_per_seed(self):
        a = make_drift_device()
        b = make_drift_device()
        a.advance_time(20)
        b.advance_time(20)
        assert np.array_equal(a.drift_mask(0, 8 * SEGMENT),
                              b.drift_mask(0, 8 * SEGMENT))

    def test_config_validation(self):
        with pytest.raises(ValueError, match="retention_mean"):
            make_drift_device(retention_mean=0)
        with pytest.raises(ValueError, match="wear_scale"):
            make_drift_device(wear_scale=-1)


class TestSensingOverlay:
    def test_drifted_cells_read_flipped_until_rewritten(self):
        device = make_drift_device(retention_mean=5)
        before = bytes(device.read_array(0, SEGMENT))
        device.advance_time(50)  # far past every budget
        mask = device.drift_mask(0, SEGMENT)
        assert popcount_array(mask) > 0
        sensed = device.read_array(0, SEGMENT)
        # Sensed value is exactly content XOR drift mask — drift corrupts
        # the *reading*, never the stored charge.
        assert bytes(np.bitwise_xor(sensed, mask)) == before
        assert bytes(sensed) != before

    def test_write_refreshes_drifted_cells(self):
        device = make_drift_device(retention_mean=5)
        controller = MemoryController(device)
        original = controller.read(0, SEGMENT)
        device.advance_time(50)
        assert controller.read(0, SEGMENT) != original
        # Rewriting the same logical value force-pulses the drifted cells:
        # the full value senses clean again.
        controller.write(0, np.frombuffer(original, dtype=np.uint8))
        assert controller.read(0, SEGMENT) == original
        assert popcount_array(device.drift_mask(0, SEGMENT)) == 0

    def test_refresh_resets_retention_timers(self):
        device = make_drift_device(retention_mean=5)
        controller = MemoryController(device)
        original = controller.read(0, SEGMENT)
        device.advance_time(50)
        controller.write(0, np.frombuffer(original, dtype=np.uint8))
        # A freshly refreshed segment survives another window shorter than
        # its smallest per-cell budget…
        window = int(device._drift_budget[: SEGMENT * 8].min()) - 1
        device.advance_time(window)
        assert popcount_array(device.drift_mask(0, SEGMENT)) == 0
        # …and drifts again once its budgets elapse anew.
        device.advance_time(100)
        assert popcount_array(device.drift_mask(0, SEGMENT)) > 0

    def test_controller_refresh_heals_and_counts(self):
        device = make_drift_device(retention_mean=5)
        controller = MemoryController(device)
        original = controller.read(0, SEGMENT)
        device.advance_time(50)
        drifted = popcount_array(device.drift_mask(0, SEGMENT))
        assert drifted > 0
        healed = controller.refresh(0, SEGMENT)
        assert healed == drifted
        assert controller.read(0, SEGMENT) == original
        assert controller.refresh(0, SEGMENT) == 0  # idempotent

    def test_batched_program_refreshes_drift(self):
        device = make_drift_device(retention_mean=5)
        device.advance_time(50)
        addrs = np.array([0, SEGMENT], dtype=np.int64)
        stored = np.vstack([
            device.read_array(0, SEGMENT) ^ device.drift_mask(0, SEGMENT),
            device.read_array(SEGMENT, SEGMENT)
            ^ device.drift_mask(SEGMENT, SEGMENT),
        ])
        masks = np.zeros((2, SEGMENT), dtype=np.uint8)  # DCW: nothing dirty
        device.program_many(addrs, stored, masks)
        assert popcount_array(device.drift_mask(0, 2 * SEGMENT)) == 0


class TestWearAndImmortality:
    def test_wear_scale_accelerates_drift(self):
        # Bit-wear tracking supplies the program-cycle counts the wear
        # coupling divides the budgets by.
        slow = make_drift_device(
            retention_mean=30, wear_scale=0.0, track_bit_wear=True
        )
        fast = make_drift_device(
            retention_mean=30, wear_scale=5.0, track_bit_wear=True
        )
        value = np.zeros(SEGMENT, dtype=np.uint8)
        ones = np.full(SEGMENT, 0xFF, dtype=np.uint8)
        for device in (slow, fast):
            for _ in range(10):  # wear segment 0 heavily
                device.program(0, ones, np.full(SEGMENT, 0xFF, np.uint8))
                device.program(0, value, np.full(SEGMENT, 0xFF, np.uint8))
        slow.advance_time(10)
        fast.advance_time(10)
        assert popcount_array(fast.drift_mask(0, SEGMENT)) > popcount_array(
            slow.drift_mask(0, SEGMENT)
        )

    def test_immortal_prefix_never_drifts(self):
        device = make_drift_device(
            retention_mean=2, immortal_prefix_segments=2
        )
        device.advance_time(10_000)
        assert popcount_array(device.drift_mask(0, 2 * SEGMENT)) == 0
        assert popcount_array(device.drift_mask(2 * SEGMENT, SEGMENT)) > 0

    def test_stuck_cells_do_not_drift(self):
        from repro.nvm import WearOutConfig

        device = NVMDevice(
            capacity_bytes=8 * SEGMENT,
            segment_size=SEGMENT,
            initial_fill="random",
            seed=7,
            wearout=WearOutConfig(endurance_mean=1, seed=5),
            drift=DriftConfig(retention_mean=2, seed=3),
        )
        device.age(10)  # everything stuck at its current charge
        stuck = device.stuck_cell_count()
        assert stuck == device.capacity_bytes * 8
        assert device.advance_time(100) == 0
        assert device.drifted_cell_count() == 0


class TestFaultSiteAndPersistence:
    def test_drift_flip_site_fires_once_per_call(self):
        faults = FaultInjector()
        device = make_drift_device(retention_mean=5)
        device.faults = faults
        device.advance_time(50)
        assert faults.hits("device.drift_flip") == 1
        device.advance_time(50)  # nothing new drifts
        assert faults.hits("device.drift_flip") == 1

    def test_save_load_roundtrips_drift_state(self, tmp_path):
        device = make_drift_device(retention_mean=5)
        device.advance_time(7)
        path = tmp_path / "drift.npz"
        device.save(path)
        clone = NVMDevice.load(path)
        assert clone.clock == device.clock
        assert clone.drift == device.drift
        assert np.array_equal(
            clone.drift_mask(0, 8 * SEGMENT),
            device.drift_mask(0, 8 * SEGMENT),
        )
        # The clone keeps drifting on the same schedule.
        clone.advance_time(43)
        device.advance_time(43)
        assert np.array_equal(
            clone.drift_mask(0, 8 * SEGMENT),
            device.drift_mask(0, 8 * SEGMENT),
        )
