"""Wear-leveling tests: mapping consistency and swap accounting."""

import numpy as np
import pytest

from repro.nvm.controller import MemoryController
from repro.nvm.device import NVMDevice
from repro.nvm.wear_leveling import (
    NoWearLeveling,
    SegmentSwapWearLeveling,
    StartGapWearLeveling,
)


def make_controller(wl, n_segments=16, seed=9):
    dev = NVMDevice(
        capacity_bytes=n_segments * 64,
        segment_size=64,
        initial_fill="random",
        seed=seed,
    )
    return MemoryController(dev, wear_leveling=wl), dev


class TestNoWearLeveling:
    def test_identity_mapping(self):
        controller, _ = make_controller(NoWearLeveling())
        for seg in range(controller.n_segments):
            assert controller.wear_leveling.to_physical(seg) == seg


class TestSegmentSwap:
    def test_period_validation(self):
        with pytest.raises(ValueError):
            SegmentSwapWearLeveling(period=0)

    def test_swap_fires_every_period(self):
        wl = SegmentSwapWearLeveling(period=4, seed=0)
        controller, _ = make_controller(wl)
        for i in range(12):
            controller.write((i % 4) * 64, bytes(64))
        assert wl.swaps_performed == 3

    def test_contents_survive_swapping(self):
        wl = SegmentSwapWearLeveling(period=1, seed=1)
        controller, _ = make_controller(wl)
        rng = np.random.default_rng(2)
        expected = {}
        for i in range(60):
            seg = int(rng.integers(0, controller.n_segments))
            data = rng.integers(0, 256, 64, dtype=np.uint8).tobytes()
            controller.write(seg * 64, data)
            expected[seg] = data
        for seg, data in expected.items():
            assert controller.read(seg * 64, 64) == data

    def test_mapping_is_bijective_after_swaps(self):
        wl = SegmentSwapWearLeveling(period=1, seed=3)
        controller, _ = make_controller(wl)
        for i in range(40):
            controller.write((i % controller.n_segments) * 64, bytes(64))
        physical = [wl.to_physical(s) for s in range(controller.n_segments)]
        assert sorted(physical) == list(range(controller.n_segments))

    def test_swap_traffic_is_accounted(self):
        wl = SegmentSwapWearLeveling(period=1, seed=4)
        controller, device = make_controller(wl)
        before = device.stats.writes
        controller.write(0, bytes(64))  # triggers a swap: 2 extra programs
        assert device.stats.writes >= before + 2

    def test_unattached_raises(self):
        with pytest.raises(RuntimeError):
            SegmentSwapWearLeveling(period=2).to_physical(0)


class TestStartGap:
    def test_exposes_one_less_segment(self):
        wl = StartGapWearLeveling(period=2)
        controller, _ = make_controller(wl)
        assert controller.n_segments == 15

    def test_mapping_is_injective_and_avoids_gap(self):
        wl = StartGapWearLeveling(period=1)
        controller, _ = make_controller(wl)
        for round_idx in range(50):
            controller.write(
                (round_idx % controller.n_segments) * 64, bytes(64)
            )
            physical = [
                wl.to_physical(s) for s in range(controller.n_segments)
            ]
            assert len(set(physical)) == len(physical)
            assert wl._gap not in physical

    def test_contents_survive_gap_rotation(self):
        wl = StartGapWearLeveling(period=1)
        controller, _ = make_controller(wl)
        rng = np.random.default_rng(5)
        expected = {}
        for i in range(100):
            seg = int(rng.integers(0, controller.n_segments))
            data = rng.integers(0, 256, 64, dtype=np.uint8).tobytes()
            controller.write(seg * 64, data)
            expected[seg] = data
        for seg, data in expected.items():
            assert controller.read(seg * 64, 64) == data

    def test_gap_completes_revolutions(self):
        wl = StartGapWearLeveling(period=1)
        controller, _ = make_controller(wl, n_segments=4)
        # 4 physical segments -> gap returns home every 4 moves.
        for i in range(16):
            controller.write((i % 3) * 64, bytes(64))
        assert wl.moves_performed == 16

    def test_too_small_device_raises(self):
        wl = StartGapWearLeveling(period=1)
        dev = NVMDevice(capacity_bytes=64, segment_size=64)
        with pytest.raises(ValueError):
            wl.attach(dev)

    def test_out_of_range_logical_raises(self):
        wl = StartGapWearLeveling(period=1)
        make_controller(wl)
        with pytest.raises(IndexError):
            wl.to_physical(15)  # only 15 logical segments: 0..14


class TestWriteManyScalarFallback:
    """``controller.write_many`` must fall back to per-row writes — with
    byte-identical results — whenever batching is unsafe: an active
    wear-leveling remapper (mid-batch remaps are order-dependent) or
    verify-after-write."""

    def _workload(self, controller, seed=5, n_writes=24):
        rng = np.random.default_rng(seed)
        addrs = rng.integers(0, controller.n_segments, n_writes) * 64
        values = [
            rng.integers(0, 256, 64, dtype=np.uint8).tobytes()
            for _ in range(n_writes)
        ]
        return [int(a) for a in addrs], values

    @pytest.mark.parametrize(
        "make_wl",
        [
            lambda: SegmentSwapWearLeveling(period=2, seed=3),
            lambda: SegmentSwapWearLeveling(period=2, seed=3, scratch=True),
            lambda: StartGapWearLeveling(period=2),
        ],
        ids=["swap-legacy", "swap-scratch", "start-gap"],
    )
    def test_batched_equals_sequential_under_wear_leveling(self, make_wl):
        ctrl_many, dev_many = make_controller(make_wl())
        ctrl_seq, dev_seq = make_controller(make_wl())
        addrs, values = self._workload(ctrl_many)

        results_many = ctrl_many.write_many(addrs, values)
        results_seq = [
            ctrl_seq.write(a, v) for a, v in zip(addrs, values)
        ]

        assert results_many == results_seq
        assert np.array_equal(
            dev_many.peek(0, dev_many.capacity_bytes),
            dev_seq.peek(0, dev_seq.capacity_bytes),
        )
        for seg in range(ctrl_many.n_segments):
            assert ctrl_many.wear_leveling.to_physical(
                seg
            ) == ctrl_seq.wear_leveling.to_physical(seg)
            assert ctrl_many.read(seg * 64, 64) == ctrl_seq.read(seg * 64, 64)

    def test_batched_equals_sequential_under_verify(self):
        from repro.nvm import WearOutConfig

        def worn():
            dev = NVMDevice(
                capacity_bytes=16 * 64,
                segment_size=64,
                initial_fill="random",
                seed=9,
                wearout=WearOutConfig(
                    endurance_mean=6, endurance_sigma=0.4, seed=2,
                    ecp_entries=96,
                ),
            )
            return MemoryController(dev), dev

        ctrl_many, dev_many = worn()
        ctrl_seq, dev_seq = worn()
        addrs, values = self._workload(ctrl_many, n_writes=16)

        assert ctrl_many.write_many(addrs, values) == [
            ctrl_seq.write(a, v) for a, v in zip(addrs, values)
        ]
        assert np.array_equal(
            dev_many.peek(0, dev_many.capacity_bytes),
            dev_seq.peek(0, dev_seq.capacity_bytes),
        )
        assert (
            ctrl_many.corrections_recorded == ctrl_seq.corrections_recorded
        )
        for got, want in zip(
            dev_many.ecc.state_arrays(), dev_seq.ecc.state_arrays()
        ):
            assert np.array_equal(got, want)
