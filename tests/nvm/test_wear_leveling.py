"""Wear-leveling tests: mapping consistency and swap accounting."""

import numpy as np
import pytest

from repro.nvm.controller import MemoryController
from repro.nvm.device import NVMDevice
from repro.nvm.wear_leveling import (
    NoWearLeveling,
    SegmentSwapWearLeveling,
    StartGapWearLeveling,
)


def make_controller(wl, n_segments=16, seed=9):
    dev = NVMDevice(
        capacity_bytes=n_segments * 64,
        segment_size=64,
        initial_fill="random",
        seed=seed,
    )
    return MemoryController(dev, wear_leveling=wl), dev


class TestNoWearLeveling:
    def test_identity_mapping(self):
        controller, _ = make_controller(NoWearLeveling())
        for seg in range(controller.n_segments):
            assert controller.wear_leveling.to_physical(seg) == seg


class TestSegmentSwap:
    def test_period_validation(self):
        with pytest.raises(ValueError):
            SegmentSwapWearLeveling(period=0)

    def test_swap_fires_every_period(self):
        wl = SegmentSwapWearLeveling(period=4, seed=0)
        controller, _ = make_controller(wl)
        for i in range(12):
            controller.write((i % 4) * 64, bytes(64))
        assert wl.swaps_performed == 3

    def test_contents_survive_swapping(self):
        wl = SegmentSwapWearLeveling(period=1, seed=1)
        controller, _ = make_controller(wl)
        rng = np.random.default_rng(2)
        expected = {}
        for i in range(60):
            seg = int(rng.integers(0, controller.n_segments))
            data = rng.integers(0, 256, 64, dtype=np.uint8).tobytes()
            controller.write(seg * 64, data)
            expected[seg] = data
        for seg, data in expected.items():
            assert controller.read(seg * 64, 64) == data

    def test_mapping_is_bijective_after_swaps(self):
        wl = SegmentSwapWearLeveling(period=1, seed=3)
        controller, _ = make_controller(wl)
        for i in range(40):
            controller.write((i % controller.n_segments) * 64, bytes(64))
        physical = [wl.to_physical(s) for s in range(controller.n_segments)]
        assert sorted(physical) == list(range(controller.n_segments))

    def test_swap_traffic_is_accounted(self):
        wl = SegmentSwapWearLeveling(period=1, seed=4)
        controller, device = make_controller(wl)
        before = device.stats.writes
        controller.write(0, bytes(64))  # triggers a swap: 2 extra programs
        assert device.stats.writes >= before + 2

    def test_unattached_raises(self):
        with pytest.raises(RuntimeError):
            SegmentSwapWearLeveling(period=2).to_physical(0)


class TestStartGap:
    def test_exposes_one_less_segment(self):
        wl = StartGapWearLeveling(period=2)
        controller, _ = make_controller(wl)
        assert controller.n_segments == 15

    def test_mapping_is_injective_and_avoids_gap(self):
        wl = StartGapWearLeveling(period=1)
        controller, _ = make_controller(wl)
        for round_idx in range(50):
            controller.write(
                (round_idx % controller.n_segments) * 64, bytes(64)
            )
            physical = [
                wl.to_physical(s) for s in range(controller.n_segments)
            ]
            assert len(set(physical)) == len(physical)
            assert wl._gap not in physical

    def test_contents_survive_gap_rotation(self):
        wl = StartGapWearLeveling(period=1)
        controller, _ = make_controller(wl)
        rng = np.random.default_rng(5)
        expected = {}
        for i in range(100):
            seg = int(rng.integers(0, controller.n_segments))
            data = rng.integers(0, 256, 64, dtype=np.uint8).tobytes()
            controller.write(seg * 64, data)
            expected[seg] = data
        for seg, data in expected.items():
            assert controller.read(seg * 64, 64) == data

    def test_gap_completes_revolutions(self):
        wl = StartGapWearLeveling(period=1)
        controller, _ = make_controller(wl, n_segments=4)
        # 4 physical segments -> gap returns home every 4 moves.
        for i in range(16):
            controller.write((i % 3) * 64, bytes(64))
        assert wl.moves_performed == 16

    def test_too_small_device_raises(self):
        wl = StartGapWearLeveling(period=1)
        dev = NVMDevice(capacity_bytes=64, segment_size=64)
        with pytest.raises(ValueError):
            wl.attach(dev)

    def test_out_of_range_logical_raises(self):
        wl = StartGapWearLeveling(period=1)
        make_controller(wl)
        with pytest.raises(IndexError):
            wl.to_physical(15)  # only 15 logical segments: 0..14
