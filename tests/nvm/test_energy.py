"""Energy model tests, including the Figure 1 calibration."""

import pytest

from repro.nvm.energy import EnergyModel


class TestEnergyModel:
    def setup_method(self):
        self.model = EnergyModel()

    def test_write_energy_monotone_in_flips(self):
        low = self.model.write_energy(256, 100, 4)
        high = self.model.write_energy(256, 2000, 4)
        assert high > low

    def test_write_energy_monotone_in_lines(self):
        few = self.model.write_energy(256, 500, 1)
        many = self.model.write_energy(256, 500, 4)
        assert many > few

    def test_aux_bits_cost_like_data_bits(self):
        base = self.model.write_energy(64, 100, 1)
        with_aux = self.model.write_energy(64, 100, 1, n_aux_bits=10)
        assert with_aux == pytest.approx(base + 10 * self.model.flip_energy_pj)

    def test_figure1_calibration_56_percent_saving(self):
        """The full Figure 1 round — 3 reads (tx read + two RBW reads), an
        undo-log write of the 256 B old content (~50% flips over stale log
        bytes), and the data write — saves ~56% at x=0 vs x=100."""

        def round_energy(data_flips: int, data_lines: int) -> float:
            reads = 3 * self.model.read_energy(256)
            log_write = self.model.write_energy(256, 1024, 4)
            data_write = self.model.write_energy(256, data_flips, data_lines)
            return reads + log_write + data_write

        identical = round_energy(0, 0)
        all_different = round_energy(2048, 4)
        saving = 1.0 - identical / all_different
        assert 0.50 <= saving <= 0.60

    def test_figure1_intermediate_point_is_monotone(self):
        """Energy grows monotonically along the Figure 1 sweep."""
        energies = [
            self.model.write_energy(256, flips, 4 if flips else 0)
            for flips in (0, 512, 1024, 1536, 2048)
        ]
        assert energies == sorted(energies)

    def test_read_energy_scales_with_size(self):
        assert self.model.read_energy(256) > self.model.read_energy(64)

    def test_zero_byte_operations_raise(self):
        with pytest.raises(ValueError):
            self.model.write_energy(0, 0, 0)
        with pytest.raises(ValueError):
            self.model.read_energy(0)

    def test_dram_energy_linear(self):
        assert self.model.dram_energy(100) == pytest.approx(
            100 * self.model.dram_bit_energy_pj
        )

    def test_lines_spanned(self):
        assert self.model.lines_spanned(1) == 1
        assert self.model.lines_spanned(64) == 1
        assert self.model.lines_spanned(65) == 2
        assert self.model.lines_spanned(256) == 4

    def test_pcm_bit_cost_matches_paper_constant(self):
        """The paper cites ~50 pJ per flipped PCM bit (§1)."""
        assert self.model.flip_energy_pj == pytest.approx(50.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            self.model.flip_energy_pj = 1.0
