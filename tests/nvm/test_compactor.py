"""Capacity reclamation: segment reclaim lifecycle, budgeted compaction,
static (cold-data) wear leveling and the compactor worker loop."""

import time

import numpy as np
import pytest

from repro.core.config import fast_test_config
from repro.core.kvstore import KVStore
from repro.nvm import (
    Compactor,
    MemoryController,
    NVMDevice,
    WearOutConfig,
)
from repro.pmem.catalog import PersistentCatalog
from repro.pmem.pool import PersistentPool
from repro.testing import FaultInjector

SEGMENT = 64
N_SEGMENTS = 40
LOG_SEGMENTS = 4
KEY_CAPACITY = 16

_PIPELINE = {}


def make_store(*, endurance_mean=10**6, spares=0, faults=None, seed=7):
    """Durable store over a mortal device whose endurance is high enough
    that nothing retires on its own — tests drive the health transitions
    explicitly."""
    meta = PersistentCatalog.meta_segments_for(
        N_SEGMENTS, LOG_SEGMENTS, SEGMENT, KEY_CAPACITY
    )
    device = NVMDevice(
        capacity_bytes=N_SEGMENTS * SEGMENT,
        segment_size=SEGMENT,
        initial_fill="random",
        seed=seed,
        faults=faults,
        wearout=WearOutConfig(
            endurance_mean=endurance_mean,
            endurance_sigma=0.01,
            seed=5,
            ecp_entries=2,
            immortal_prefix_segments=LOG_SEGMENTS + meta,
        ),
    )
    pool = PersistentPool(
        MemoryController(device),
        log_segments=LOG_SEGMENTS,
        meta_segments=meta,
        faults=faults,
    )
    store = KVStore.create(
        pool,
        config=fast_test_config(),
        faults=faults,
        key_capacity=KEY_CAPACITY,
        pipeline=_PIPELINE.get("pipeline"),
    )
    _PIPELINE.setdefault("pipeline", store.engine.pipeline)
    if spares:
        store.engine.reserve_spares(spares)
    return store


def fill(store, n_keys=4, seed=5):
    rng = np.random.default_rng(seed)
    oracle = {}
    for i in range(n_keys):
        key = b"k%02d" % i
        value = rng.integers(0, 256, 48, dtype=np.uint8).tobytes()
        store.put(key, value)
        oracle[key] = value
    return oracle


def seg_of(store, key):
    return store.index.get(key)[0] // SEGMENT


class TestReclaimLifecycle:
    def test_draining_a_retiring_segment_reclaims_it(self):
        store = make_store()
        health = store.engine.health
        fill(store)
        addr = store.index.get(b"k00")[0]
        seg = addr // SEGMENT
        health.mark_retiring(seg)
        assert health.is_retiring(seg)
        assert health.relocations_pending == 1

        # One value per segment: freeing it fully drains the segment,
        # which reclaims it into the spares pool instead of stranding it.
        store.delete(b"k00")
        assert not health.is_retiring(seg)
        assert health.is_reclaimed(seg)
        assert addr in health.state.spares
        assert health.relocations_pending == 0
        # Quarantined like a reserved spare until adopted.
        assert addr not in store.engine.dap.snapshot_addresses()

        # Reclaimed segments run at ECP capacity by design: re-queuing
        # them would evacuate forever, so mark_retiring is a no-op.
        health.mark_retiring(seg)
        assert not health.is_retiring(seg)

        # Adoption returns the reclaimed capacity to placement.
        assert store.engine.adopt_spare() == addr
        assert addr in store.engine.dap.snapshot_addresses()

        telemetry = health.telemetry()
        assert telemetry["segments_reclaimed"] == 1
        assert telemetry["segments_reclaimed_total"] == 1

    def test_reclaim_of_non_retiring_segment_is_refused(self):
        store = make_store()
        health = store.engine.health
        assert health.reclaim(3) is None
        health.state.retired.add(3)
        assert health.reclaim(3) is None

    def test_retiring_reclaimed_segment_that_dies_leaves_spares(self):
        store = make_store()
        health = store.engine.health
        fill(store)
        addr = store.index.get(b"k01")[0]
        seg = addr // SEGMENT
        health.mark_retiring(seg)
        store.delete(b"k01")
        assert addr in health.state.spares

        # The reclaimed segment dies for real: it must leave the spares
        # list, or the next adoption would hand out dead media.
        health.retire(seg)
        assert health.is_retired(seg)
        assert not health.is_reclaimed(seg)
        assert addr not in health.state.spares

    def test_queue_relocation_dedup_counter(self):
        store = make_store()
        health = store.engine.health
        health.queue_relocation(5)
        health.queue_relocation(5)
        health.queue_relocation(5)
        assert health.relocations_pending == 1
        assert health.relocation_duplicates_dropped == 2
        assert health.telemetry()["relocation_duplicates_dropped"] == 2

    def test_reclaimed_state_roundtrips_device_snapshot(self, tmp_path):
        store = make_store()
        health = store.engine.health
        fill(store)
        addr = store.index.get(b"k02")[0]
        seg = addr // SEGMENT
        health.mark_retiring(seg)
        store.delete(b"k02")
        assert health.is_reclaimed(seg)

        path = tmp_path / "worn.npz"
        store.engine.controller.device.save(path)
        loaded = NVMDevice.load(path)
        assert loaded.health.reclaimed == {seg}
        assert addr in loaded.health.spares


class TestDrainRelocations:
    def test_budget_limits_work_and_drained_segments_reclaim(self):
        store = make_store()
        health = store.engine.health
        oracle = fill(store)
        for key in (b"k00", b"k01", b"k02"):
            health.mark_retiring(seg_of(store, key))
        assert health.relocations_pending == 3

        assert store.drain_relocations(budget=1) == 1
        assert health.relocations_pending == 2
        assert store.drain_relocations() == 2
        assert health.relocations_pending == 0

        # Content-neutral: every value still reads back exactly.
        for key, value in oracle.items():
            assert store.get(key) == value
        # Each evacuated one-value segment was reclaimed, not stranded.
        assert health.telemetry()["segments_reclaimed"] == 3
        assert not health.state.retiring


class TestCompactorRounds:
    def test_round_budgets_relocations_and_reports_backlog(self):
        store = make_store()
        health = store.engine.health
        fill(store)
        compactor = Compactor(
            store, relocations_per_round=2, swaps_per_round=0
        )
        assert store.compactor is compactor
        for key in (b"k00", b"k01", b"k02"):
            health.mark_retiring(seg_of(store, key))

        summary = compactor.compact_round()
        assert summary["relocations"] == 2
        assert summary["relocation_backlog"] == 1
        summary = compactor.compact_round()
        assert summary["relocations"] == 1
        assert summary["relocation_backlog"] == 0
        assert compactor.stats.relocations == 3
        assert compactor.stats.rounds == 2

    def test_wear_level_swap_parks_cold_value_and_forwards_heat(self):
        faults = FaultInjector()
        store = make_store(faults=faults)
        device = store.engine.controller.device
        oracle = fill(store, n_keys=2)
        compactor = Compactor(
            store, swaps_per_round=1, min_wear_gap=4, dormancy_writes=3
        )

        # Make k00 dormant (its stamp ages while k01 is rewritten) and
        # manufacture a clearly most-worn free segment as the target.
        rng = np.random.default_rng(11)
        for _ in range(4):
            value = rng.integers(0, 256, 48, dtype=np.uint8).tobytes()
            store.put(b"k01", value)
            oracle[b"k01"] = value
        old_addr = store.index.get(b"k00")[0]
        heat_before = store.heat_of(old_addr)
        target = store.engine.dap.snapshot_addresses()[0]
        device.segment_write_count[target // SEGMENT] += 50

        assert compactor.wear_level_round() == 1
        assert compactor.stats.wl_swaps == 1
        new_addr = store.index.get(b"k00")[0]
        assert new_addr == target
        assert store.get(b"k00") == oracle[b"k00"]
        # The temperature stamp is forwarded unchanged: migration must not
        # make cold data look hot.
        assert store.heat_of(new_addr) == heat_before
        assert store.heat_of(old_addr) is None
        # The vacated barely-worn segment re-entered the free pool.
        assert old_addr in store.engine.dap.snapshot_addresses()
        # Both GC fault sites fired on the way.
        assert faults.hits("wl.swap") == 1
        assert faults.hits("compact.migrate") == 1

    def test_no_swap_without_wear_gap_or_dormancy(self):
        store = make_store()
        fill(store, n_keys=2)
        compactor = Compactor(
            store, swaps_per_round=4, min_wear_gap=4, dormancy_writes=3
        )
        # Fresh store: every value hot, free segments barely worn — no
        # pairing clears the thresholds, so no write is spent.
        assert compactor.wear_level_round() == 0
        assert compactor.stats.wl_swaps == 0

    def test_migrate_refuses_bad_moves(self):
        store = make_store()
        oracle = fill(store, n_keys=2)
        addr0 = store.index.get(b"k00")[0]
        addr1 = store.index.get(b"k01")[0]
        free = store.engine.dap.snapshot_addresses()[0]

        assert store.migrate(b"absent", free) is False
        assert store.migrate(b"k00", addr0) is False  # already there
        assert store.migrate(b"k00", addr1) is False  # target not free
        for key, value in oracle.items():
            assert store.get(key) == value

    def test_migrate_forwards_catalog_record(self):
        store = make_store()
        oracle = fill(store, n_keys=1)
        old_addr = store.index.get(b"k00")[0]
        target = store.engine.dap.snapshot_addresses()[0]

        assert store.migrate(b"k00", target) is True
        assert store.get(b"k00") == oracle[b"k00"]
        # tx_move: the record travelled and the old slot's flag is reset,
        # in one transaction.
        pool = store.pool
        assert store.catalog.read(pool.object_index(old_addr)) is None
        entry = store.catalog.read(pool.object_index(target))
        assert entry is not None and entry.key == b"k00"

    def test_validates_parameters(self):
        store = make_store()
        with pytest.raises(ValueError):
            Compactor(store, relocations_per_round=0)
        with pytest.raises(ValueError):
            Compactor(store, swaps_per_round=-1)
        with pytest.raises(ValueError):
            Compactor(store, min_wear_gap=0)
        with pytest.raises(ValueError):
            Compactor(store, dormancy_writes=0)


class TestWorkerLifecycle:
    def test_background_rounds_run_and_stop_joins(self):
        store = make_store()
        fill(store, n_keys=2)
        compactor = Compactor(store, interval_s=0.001)
        thread = compactor.start()
        assert compactor.start() is thread  # single-flight
        assert compactor.running
        deadline = time.monotonic() + 5
        while compactor.stats.rounds == 0 and time.monotonic() < deadline:
            time.sleep(0.002)
        compactor.stop()
        assert not compactor.running
        assert compactor.stats.rounds > 0

    def test_telemetry_reports_state(self):
        store = make_store()
        compactor = Compactor(store)
        telemetry = compactor.telemetry()
        assert telemetry["running"] is False
        assert telemetry["paused"] is False
        assert set(telemetry) >= {
            "rounds",
            "relocations",
            "wl_swaps",
            "wl_swaps_refused",
            "worker_errors",
            "relocation_backlog",
        }
