"""Property tests composing write schemes with wear leveling.

Any scheme combined with any wear-leveling policy must preserve the
logical-content contract: reads always return the last value written to the
logical address, and the accounting invariants hold throughout.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import DCW, FNW, Captopril, MinShift, NaiveWrite
from repro.nvm import (
    MemoryController,
    NVMDevice,
    NoWearLeveling,
    SegmentSwapWearLeveling,
    StartGapWearLeveling,
)

SCHEMES = [NaiveWrite, DCW, FNW, MinShift, Captopril]
LEVELERS = [
    lambda: NoWearLeveling(),
    lambda: SegmentSwapWearLeveling(period=2, seed=0),
    lambda: StartGapWearLeveling(period=3),
]


def build(scheme_cls, leveler_factory, seed):
    device = NVMDevice(
        capacity_bytes=12 * 32,
        segment_size=32,
        initial_fill="random",
        seed=seed,
    )
    controller = MemoryController(
        device, scheme=scheme_cls(), wear_leveling=leveler_factory()
    )
    return controller, device


class TestSchemeTimesLeveler:
    @pytest.mark.parametrize("scheme_cls", SCHEMES)
    @pytest.mark.parametrize("leveler_idx", range(len(LEVELERS)))
    def test_randomised_model_equivalence(self, scheme_cls, leveler_idx):
        controller, device = build(scheme_cls, LEVELERS[leveler_idx], seed=5)
        rng = np.random.default_rng(scheme_cls.__name__.__hash__() % 1000)
        model: dict[int, bytes] = {}
        for step in range(120):
            seg = int(rng.integers(0, controller.n_segments))
            data = rng.integers(0, 256, 32, dtype=np.uint8).tobytes()
            controller.write(seg * 32, data)
            model[seg] = data
            if step % 10 == 0:
                for known_seg, known in model.items():
                    assert controller.read(known_seg * 32, 32) == known

    @pytest.mark.parametrize("scheme_cls", SCHEMES)
    def test_accounting_invariants(self, scheme_cls):
        controller, device = build(scheme_cls, LEVELERS[0], seed=6)
        rng = np.random.default_rng(9)
        for _ in range(40):
            seg = int(rng.integers(0, controller.n_segments))
            data = rng.integers(0, 256, 32, dtype=np.uint8).tobytes()
            controller.write(seg * 32, data)
        stats = device.stats
        assert stats.bits_flipped <= stats.bits_programmed
        assert stats.dirty_lines_written <= stats.writes * 1  # 32B < 1 line
        assert stats.write_energy_pj >= stats.writes * (
            device.energy_model.static_write_energy_pj
        )

    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_hypothesis_random_program(self, data):
        scheme_cls = data.draw(st.sampled_from(SCHEMES))
        leveler_idx = data.draw(st.integers(0, len(LEVELERS) - 1))
        controller, _ = build(
            scheme_cls, LEVELERS[leveler_idx], seed=data.draw(st.integers(0, 50))
        )
        model: dict[int, bytes] = {}
        n_ops = data.draw(st.integers(1, 30))
        for _ in range(n_ops):
            seg = data.draw(st.integers(0, controller.n_segments - 1))
            payload = data.draw(st.binary(min_size=32, max_size=32))
            controller.write(seg * 32, payload)
            model[seg] = payload
        for seg, payload in model.items():
            assert controller.read(seg * 32, 32) == payload


class TestBitCountingOracle:
    def test_vectorised_flip_count_matches_python_loop(self):
        """DESIGN.md's oracle: the vectorised popcount path must agree with
        a dead-simple per-bit Python loop."""
        rng = np.random.default_rng(11)
        device = NVMDevice(capacity_bytes=64, segment_size=64)
        for _ in range(10):
            old = device.peek(0, 16)
            new = rng.integers(0, 256, 16, dtype=np.uint8)
            mask = rng.integers(0, 256, 16, dtype=np.uint8)
            expected_programmed = 0
            expected_flipped = 0
            for i in range(16):
                for bit in range(8):
                    select = (int(mask[i]) >> bit) & 1
                    if select:
                        expected_programmed += 1
                        old_bit = (int(old[i]) >> bit) & 1
                        new_bit = (int(new[i]) >> bit) & 1
                        if old_bit != new_bit:
                            expected_flipped += 1
            result = device.program(0, new, program_mask=mask)
            assert result.bits_programmed == expected_programmed
            assert result.bits_flipped == expected_flipped
