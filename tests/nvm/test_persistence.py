"""Device snapshot/restore and wear-summary tests."""

import numpy as np
import pytest

from repro.nvm import EnergyModel, MemoryController, NVMDevice


class TestSnapshot:
    def test_content_roundtrip(self, tmp_path):
        device = NVMDevice(
            capacity_bytes=8 * 64, segment_size=64, initial_fill="random",
            seed=1,
        )
        device.program(0, bytes(range(64)))
        path = tmp_path / "device.npz"
        device.save(path)
        restored = NVMDevice.load(path)
        assert np.array_equal(restored.peek(0, 8 * 64), device.peek(0, 8 * 64))
        assert restored.capacity_bytes == device.capacity_bytes
        assert restored.segment_size == device.segment_size

    def test_wear_counters_roundtrip(self, tmp_path):
        device = NVMDevice(
            capacity_bytes=4 * 64, segment_size=64, track_bit_wear=True
        )
        device.program(0, bytes([0xFF] * 64))
        device.program(64, bytes([0x0F] * 64))
        path = tmp_path / "worn.npz"
        device.save(path)
        restored = NVMDevice.load(path)
        assert np.array_equal(restored.bit_wear, device.bit_wear)
        assert np.array_equal(
            restored.segment_write_count, device.segment_write_count
        )

    def test_snapshot_without_bit_wear(self, tmp_path):
        device = NVMDevice(capacity_bytes=128, segment_size=64)
        path = tmp_path / "plain.npz"
        device.save(path)
        restored = NVMDevice.load(path)
        with pytest.raises(RuntimeError):
            _ = restored.bit_wear

    def test_stats_are_transient(self, tmp_path):
        device = NVMDevice(capacity_bytes=128, segment_size=64)
        device.program(0, bytes(64))
        path = tmp_path / "stats.npz"
        device.save(path)
        restored = NVMDevice.load(path)
        assert restored.stats.writes == 0

    def test_restored_device_keeps_working(self, tmp_path):
        device = NVMDevice(
            capacity_bytes=8 * 64, segment_size=64, initial_fill="random",
            seed=2,
        )
        controller = MemoryController(device)
        controller.write(64, b"persist-me" + bytes(54))
        path = tmp_path / "live.npz"
        device.save(path)
        restored = NVMDevice.load(path, energy_model=EnergyModel())
        new_controller = MemoryController(restored)
        assert new_controller.read(64, 10) == b"persist-me"
        new_controller.write(128, bytes(range(64)))
        assert new_controller.read(128, 64) == bytes(range(64))


class TestWearSummary:
    def test_segment_statistics(self):
        device = NVMDevice(capacity_bytes=4 * 64, segment_size=64)
        for _ in range(5):
            device.program(0, bytes(64))
        device.program(64, bytes(64))
        summary = device.wear_summary()
        assert summary["segment_writes_max"] == 5
        assert summary["segment_writes_mean"] == pytest.approx(6 / 4)

    def test_bit_wear_statistics(self):
        device = NVMDevice(
            capacity_bytes=2 * 64, segment_size=64, track_bit_wear=True
        )
        for _ in range(10):
            device.program(0, bytes([0xFF] * 64))
        summary = device.wear_summary(endurance=100)
        assert summary["bit_wear_max"] == 10
        assert summary["lifetime_consumed"] == pytest.approx(0.1)

    def test_summary_without_bit_tracking(self):
        device = NVMDevice(capacity_bytes=128, segment_size=64)
        summary = device.wear_summary()
        assert "bit_wear_max" not in summary
        assert "segment_writes_max" in summary
