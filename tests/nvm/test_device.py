"""Device tests: programming semantics, accounting, wear counters."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nvm.device import NVMDevice
from repro.util.bits import hamming_bytes


def small_device(**kwargs) -> NVMDevice:
    defaults = dict(capacity_bytes=1024, segment_size=64)
    defaults.update(kwargs)
    return NVMDevice(**defaults)


class TestConstruction:
    def test_segment_count(self):
        assert small_device().n_segments == 16

    def test_zero_fill(self):
        dev = small_device(initial_fill="zero")
        assert not dev.peek(0, 1024).any()

    def test_random_fill_deterministic(self):
        a = small_device(initial_fill="random", seed=3).peek(0, 64)
        b = small_device(initial_fill="random", seed=3).peek(0, 64)
        assert np.array_equal(a, b)

    def test_bad_fill_raises(self):
        with pytest.raises(ValueError):
            small_device(initial_fill="garbage")

    @pytest.mark.parametrize("capacity,segment", [(0, 64), (100, 64), (-64, 64), (64, 0)])
    def test_bad_geometry_raises(self, capacity, segment):
        with pytest.raises(ValueError):
            NVMDevice(capacity_bytes=capacity, segment_size=segment)

    def test_segment_address(self):
        dev = small_device()
        assert dev.segment_address(0) == 0
        assert dev.segment_address(15) == 15 * 64
        with pytest.raises(IndexError):
            dev.segment_address(16)

    def test_segment_of(self):
        dev = small_device()
        assert dev.segment_of(0) == 0
        assert dev.segment_of(63) == 0
        assert dev.segment_of(64) == 1


class TestProgram:
    def test_full_program_stores_data(self):
        dev = small_device()
        data = bytes(range(64))
        dev.program(0, data)
        assert dev.read(0, 64) == data

    def test_masked_program_touches_only_masked_bits(self):
        dev = small_device(initial_fill="zero")
        new = np.full(4, 0xFF, dtype=np.uint8)
        mask = np.array([0xF0, 0x00, 0xFF, 0x01], dtype=np.uint8)
        dev.program(0, new, program_mask=mask)
        assert dev.peek(0, 4).tolist() == [0xF0, 0x00, 0xFF, 0x01]

    def test_bits_programmed_counts_mask(self):
        dev = small_device(initial_fill="zero")
        mask = np.array([0x0F, 0xFF], dtype=np.uint8)
        result = dev.program(0, np.zeros(2, dtype=np.uint8), program_mask=mask)
        assert result.bits_programmed == 12

    def test_bits_flipped_counts_changes_only(self):
        dev = small_device(initial_fill="zero")
        data = np.array([0xFF], dtype=np.uint8)
        first = dev.program(0, data)
        again = dev.program(0, data)
        assert first.bits_flipped == 8
        assert again.bits_flipped == 0
        assert again.bits_programmed == 8  # unmasked: cells still pulsed

    def test_dirty_lines_skips_clean_lines(self):
        dev = small_device(initial_fill="zero")
        new = np.zeros(128, dtype=np.uint8)
        mask = np.zeros(128, dtype=np.uint8)
        mask[70] = 0xFF  # activity only in the second 64 B line
        result = dev.program(0, new, program_mask=mask)
        assert result.dirty_lines == 1

    def test_dirty_lines_unaligned(self):
        dev = small_device(initial_fill="zero")
        # 8 bytes straddling the line boundary at 64.
        result = dev.program(60, np.full(8, 0xFF, dtype=np.uint8))
        assert result.dirty_lines == 2

    def test_mask_length_mismatch_raises(self):
        dev = small_device()
        with pytest.raises(ValueError):
            dev.program(0, np.zeros(4, dtype=np.uint8),
                        program_mask=np.zeros(3, dtype=np.uint8))

    def test_out_of_range_raises(self):
        dev = small_device()
        with pytest.raises(IndexError):
            dev.program(1020, np.zeros(8, dtype=np.uint8))

    def test_wrong_dtype_raises(self):
        dev = small_device()
        with pytest.raises(TypeError):
            dev.program(0, np.zeros(4, dtype=np.int32))

    def test_segment_write_count(self):
        dev = small_device()
        dev.program(0, np.zeros(64, dtype=np.uint8))
        dev.program(0, np.zeros(64, dtype=np.uint8))
        dev.program(64, np.zeros(64, dtype=np.uint8))
        assert dev.segment_write_count[0] == 2
        assert dev.segment_write_count[1] == 1

    def test_write_spanning_segments_counts_both(self):
        dev = small_device()
        dev.program(32, np.zeros(64, dtype=np.uint8))
        assert dev.segment_write_count[0] == 1
        assert dev.segment_write_count[1] == 1

    @given(st.binary(min_size=1, max_size=64), st.binary(min_size=1, max_size=64))
    @settings(max_examples=30)
    def test_dcw_flip_accounting_matches_hamming(self, old, new):
        n = min(len(old), len(new))
        old_arr = np.frombuffer(old[:n], dtype=np.uint8)
        new_arr = np.frombuffer(new[:n], dtype=np.uint8)
        dev = small_device(initial_fill="zero")
        dev.program(0, old_arr)
        mask = np.bitwise_xor(old_arr, new_arr)
        result = dev.program(0, new_arr, program_mask=mask)
        assert result.bits_programmed == hamming_bytes(old_arr, new_arr)
        assert result.bits_flipped == result.bits_programmed
        assert np.array_equal(dev.peek(0, n), new_arr)


class TestWearTracking:
    def test_bit_wear_disabled_raises(self):
        with pytest.raises(RuntimeError):
            _ = small_device().bit_wear

    def test_bit_wear_counts_programmed_positions(self):
        dev = small_device(track_bit_wear=True, initial_fill="zero")
        mask = np.array([0b10000001], dtype=np.uint8)
        dev.program(0, np.zeros(1, dtype=np.uint8), program_mask=mask)
        dev.program(0, np.zeros(1, dtype=np.uint8), program_mask=mask)
        assert dev.bit_wear[0] == 2      # MSB of byte 0
        assert dev.bit_wear[7] == 2      # LSB of byte 0
        assert dev.bit_wear[1:7].sum() == 0

    def test_bit_wear_offset_addressing(self):
        dev = small_device(track_bit_wear=True, initial_fill="zero")
        dev.program(10, np.zeros(1, dtype=np.uint8),
                    program_mask=np.array([0x80], dtype=np.uint8))
        assert dev.bit_wear[80] == 1


class TestStatsAccounting:
    def test_read_accounting(self):
        dev = small_device()
        dev.read(0, 64)
        assert dev.stats.reads == 1
        assert dev.stats.bytes_read == 64
        assert dev.stats.read_energy_pj > 0

    def test_peek_is_unaccounted(self):
        dev = small_device()
        dev.peek(0, 64)
        dev.peek_segment(3)
        assert dev.stats.reads == 0

    def test_reset_stats_preserves_content(self):
        dev = small_device()
        dev.program(0, bytes(range(64)))
        dev.reset_stats()
        assert dev.stats.writes == 0
        assert dev.read(0, 64) == bytes(range(64))

    def test_energy_accumulates(self):
        dev = small_device(initial_fill="zero")
        r1 = dev.program(0, np.full(64, 0xFF, dtype=np.uint8))
        r2 = dev.program(64, np.full(64, 0xFF, dtype=np.uint8))
        assert dev.stats.write_energy_pj == pytest.approx(r1.energy_pj + r2.energy_pj)
