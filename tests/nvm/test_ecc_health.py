"""Error-Correcting Pointers and segment health: correction entries,
verify-after-write, retirement and spare management."""

import numpy as np
import pytest

from repro.nvm import (
    ErrorCorrectingPointers,
    HealthManager,
    MemoryController,
    NVMDevice,
    SegmentRetiredError,
    StartGapWearLeveling,
    WearOutConfig,
)
from repro.testing import FaultInjector

SEG = 32


def worn_device(ecp_entries: int = 16, **kwargs) -> NVMDevice:
    wearout = kwargs.pop("wearout", None) or WearOutConfig(
        endurance_mean=2, endurance_sigma=0.0, ecp_entries=ecp_entries
    )
    return NVMDevice(
        capacity_bytes=8 * SEG, segment_size=SEG, wearout=wearout, **kwargs
    )


def kill_byte(device: NVMDevice, addr: int, value: int) -> None:
    """Exhaust one byte's cells (mean=2 endurance), leaving it stuck at
    ``value``."""
    device.program(addr, bytes([value ^ 0xFF]))
    device.program(addr, bytes([value]))
    assert device.stuck_mask(addr, 1)[0] == 0xFF


class TestErrorCorrectingPointers:
    def test_correct_without_entries_returns_input(self):
        ecc = ErrorCorrectingPointers(SEG)
        data = np.zeros(SEG, dtype=np.uint8)
        assert ecc.correct(0, data) is data

    def test_correct_patches_msb_first(self):
        ecc = ErrorCorrectingPointers(SEG)
        assert ecc.record(0, [0, 15], [1, 1])
        out = ecc.correct(0, np.zeros(SEG, dtype=np.uint8))
        assert out[0] == 0x80  # bit 0 is the MSB of byte 0
        assert out[1] == 0x01  # bit 15 is the LSB of byte 1

    def test_correct_clears_bits_too(self):
        ecc = ErrorCorrectingPointers(SEG)
        assert ecc.record(0, [7], [0])
        out = ecc.correct(0, np.full(SEG, 0xFF, dtype=np.uint8))
        assert out[0] == 0xFE

    def test_correct_respects_sub_segment_window(self):
        ecc = ErrorCorrectingPointers(SEG)
        assert ecc.record(0, [10 * 8], [1])  # byte 10, MSB
        window = ecc.correct(0, np.zeros(4, dtype=np.uint8), offset=10)
        assert window[0] == 0x80
        outside = ecc.correct(0, np.zeros(4, dtype=np.uint8), offset=20)
        assert not outside.any()

    def test_correct_never_mutates_input(self):
        ecc = ErrorCorrectingPointers(SEG)
        assert ecc.record(0, [0], [1])
        data = np.zeros(SEG, dtype=np.uint8)
        ecc.correct(0, data)
        assert not data.any()

    def test_record_updates_in_place_without_new_entries(self):
        ecc = ErrorCorrectingPointers(SEG, entries_per_segment=1)
        assert ecc.record(0, [3], [1])
        assert ecc.record(0, [3], [0])  # same dead cell, new replacement
        assert ecc.entries_used(0) == 1
        assert ecc.correct(0, np.full(SEG, 0xFF, dtype=np.uint8))[0] == 0xEF

    def test_record_is_all_or_nothing(self):
        ecc = ErrorCorrectingPointers(SEG, entries_per_segment=2)
        assert not ecc.record(0, [1, 2, 3], [1, 1, 1])
        assert ecc.entries_used(0) == 0
        assert ecc.record(0, [1, 2], [1, 1])
        assert ecc.at_capacity(0)
        assert not ecc.record(0, [3], [1])
        assert ecc.entries_used(0) == 2  # the failed record changed nothing

    def test_capacity_counts_only_fresh_offsets(self):
        ecc = ErrorCorrectingPointers(SEG, entries_per_segment=2)
        assert ecc.record(0, [1, 2], [1, 1])
        assert ecc.record(0, [1, 2], [0, 0])  # updates fit at capacity

    def test_inspection_counters(self):
        ecc = ErrorCorrectingPointers(SEG)
        assert ecc.record(2, [0], [1])
        assert ecc.record(5, [1, 2], [0, 1])
        assert ecc.corrections_active == 3
        assert ecc.segments_with_entries() == [2, 5]

    def test_state_round_trip(self):
        ecc = ErrorCorrectingPointers(SEG)
        assert ecc.record(1, [4, 9], [1, 0])
        assert ecc.record(6, [250], [1])
        restored = ErrorCorrectingPointers(SEG)
        restored.restore_state(*ecc.state_arrays())
        for got, want in zip(restored.state_arrays(), ecc.state_arrays()):
            assert np.array_equal(got, want)

    @pytest.mark.parametrize("size,entries", [(0, 6), (-1, 6), (32, 0)])
    def test_constructor_validation(self, size, entries):
        with pytest.raises(ValueError):
            ErrorCorrectingPointers(size, entries_per_segment=entries)


class TestVerifyAfterWrite:
    def test_verify_default_tracks_wearout(self):
        assert MemoryController(worn_device()).verify_writes
        immortal = NVMDevice(capacity_bytes=8 * SEG, segment_size=SEG)
        assert not MemoryController(immortal).verify_writes

    def test_verify_requires_wearout_model(self):
        immortal = NVMDevice(capacity_bytes=8 * SEG, segment_size=SEG)
        with pytest.raises(ValueError, match="wearout"):
            MemoryController(immortal, verify_writes=True)

    def test_verify_rejects_active_wear_leveling(self):
        with pytest.raises(ValueError, match="wear leveling"):
            MemoryController(
                worn_device(), wear_leveling=StartGapWearLeveling(4)
            )

    def test_unprotected_controller_opts_out(self):
        ctrl = MemoryController(worn_device(), verify_writes=False)
        assert ctrl.ecc is None and ctrl.health_manager is None

    def test_verify_records_corrections_and_reads_heal(self):
        device = worn_device(ecp_entries=16)
        kill_byte(device, 0, 0x00)
        ctrl = MemoryController(device)
        ctrl.write(0, b"\xff" * SEG)
        # The stuck byte refused all 8 pulses; ECP substitutes them.
        assert ctrl.corrections_recorded == 8
        assert ctrl.ecc.entries_used(0) == 8
        assert ctrl.verify_reads >= 1
        assert ctrl.read(0, SEG) == b"\xff" * SEG
        assert device.read(0, 1) == b"\x00"  # raw media still disagrees

    def test_verify_retires_segment_past_ecp_capacity(self):
        device = worn_device(ecp_entries=4)  # fewer than one byte of bits
        kill_byte(device, 0, 0x00)
        ctrl = MemoryController(device)
        with pytest.raises(SegmentRetiredError) as info:
            ctrl.write(0, b"\xff" * SEG)
        assert info.value.segment == 0
        assert device.health.retired == {0}
        assert ctrl.health_manager.is_retired(0)

    def test_verify_skips_retired_segments(self):
        device = worn_device(ecp_entries=4)
        kill_byte(device, 0, 0x00)
        ctrl = MemoryController(device)
        with pytest.raises(SegmentRetiredError):
            ctrl.write(0, b"\xff" * SEG)
        # Rollback-style restores onto the dead segment must not cascade.
        ctrl.write(0, b"\x12" * SEG)
        assert device.health.retired == {0}

    def test_at_capacity_marks_segment_retiring(self):
        device = worn_device(ecp_entries=8)  # exactly one dead byte fits
        kill_byte(device, 0, 0x00)
        ctrl = MemoryController(device)
        ctrl.write(0, b"\xff" * SEG)
        health = ctrl.health_manager
        assert device.health.retiring == {0}
        assert health.pop_pending_relocation() == 0
        assert health.pop_pending_relocation() is None

    def test_dcw_never_pulses_corrected_matching_cells(self):
        device = worn_device(ecp_entries=16)
        kill_byte(device, 0, 0x00)
        ctrl = MemoryController(device)
        ctrl.write(0, b"\xff" * SEG)
        recorded = ctrl.corrections_recorded
        # Rewriting identical content plans against the *corrected* old
        # bytes: nothing differs, nothing is pulsed, nothing new recorded.
        result = ctrl.write(0, b"\xff" * SEG)
        assert result.bits_programmed == 0
        assert ctrl.corrections_recorded == recorded


class TestHealthManager:
    def manager(self, faults=None) -> HealthManager:
        ctrl = MemoryController(worn_device(faults=faults))
        return ctrl.health_manager

    def test_retire_fires_site_before_mutation(self):
        faults = FaultInjector()
        manager = self.manager(faults)
        faults.arm("health.retire", error=RuntimeError("crash"))
        with pytest.raises(RuntimeError):
            manager.retire(2)
        # Crashed before the metadata write: nothing was recorded.
        assert manager.state.retired == set()

    def test_retire_is_idempotent_and_clears_retiring(self):
        manager = self.manager()
        manager.mark_retiring(2)
        manager.retire(2)
        assert manager.state.retired == {2}
        assert manager.state.retiring == set()
        assert manager.pop_pending_relocation() is None
        manager.retire(2)  # no-op
        assert manager.state.retired == {2}

    def test_mark_retiring_queues_once(self):
        manager = self.manager()
        manager.mark_retiring(3)
        manager.mark_retiring(3)
        manager.queue_relocation(3)
        assert manager.pop_pending_relocation() == 3
        assert manager.pop_pending_relocation() is None

    def test_spares_are_fifo(self):
        manager = self.manager()
        manager.add_spares([96, 128])
        assert manager.spares_left == 2
        assert manager.take_spare() == 96
        assert manager.take_spare() == 128
        assert manager.take_spare() is None

    def test_is_unplaceable(self):
        manager = self.manager()
        manager.mark_retiring(1)
        manager.retire(2)
        assert manager.is_unplaceable(1)
        assert manager.is_unplaceable(2)
        assert not manager.is_unplaceable(3)

    def test_telemetry_snapshot(self):
        manager = self.manager()
        manager.retire(1)
        manager.mark_retiring(2)
        manager.add_spares([96])
        telemetry = manager.telemetry()
        assert telemetry["segments_retired"] == 1
        assert telemetry["segments_retiring"] == 1
        assert telemetry["spares_left"] == 1
        assert telemetry["usable_capacity_fraction"] == pytest.approx(7 / 8)
        assert telemetry["stuck_cells"] == 0
        assert telemetry["corrections_active"] == 0

    def test_state_is_shared_with_the_device(self):
        device = worn_device()
        manager = MemoryController(device).health_manager
        manager.retire(5)
        assert device.health.retired == {5}
