"""Placement-strategy tests: claiming, recycling, similarity quality."""

import numpy as np
import pytest

from repro.baselines import ArbitraryPlacer, HammingTreePlacer, PNWPlacer
from repro.baselines.naive import BestFitPlacer
from repro.util.bits import bits_to_bytes, hamming_distance
from repro.workloads.datasets import make_image_dataset


def make_pool(n=40, bits=128, seed=0):
    data, _ = make_image_dataset(n, bits, n_classes=4, noise=0.05, seed=seed)
    contents = {i * 16: data[i] for i in range(n)}
    return list(contents), contents, data


class TestArbitraryPlacer:
    def test_fifo_order(self):
        addrs, contents, data = make_pool()
        placer = ArbitraryPlacer(addrs)
        assert placer.choose(data[5]) == addrs[0]
        assert placer.choose(data[6]) == addrs[1]

    def test_release_recycles(self):
        addrs, contents, data = make_pool(n=3)
        placer = ArbitraryPlacer(addrs)
        for _ in range(3):
            placer.choose(data[0])
        assert placer.free_count() == 0
        placer.release(addrs[0], data[0])
        assert placer.free_count() == 1
        assert placer.choose(data[1]) == addrs[0]

    def test_exhaustion_raises(self):
        placer = ArbitraryPlacer([])
        with pytest.raises(RuntimeError):
            placer.choose(np.zeros(8))


class TestBestFitPlacer:
    def test_chooses_minimum_hamming(self):
        addrs, contents, data = make_pool()
        placer = BestFitPlacer(addrs, contents)
        target = data[7]
        chosen = placer.choose(target)
        chosen_dist = hamming_distance(
            bits_to_bytes(contents[chosen]), bits_to_bytes(target)
        )
        for addr in addrs:
            if addr == chosen:
                continue
            other = hamming_distance(
                bits_to_bytes(contents[addr]), bits_to_bytes(target)
            )
            assert chosen_dist <= other

    def test_claimed_address_not_reused(self):
        addrs, contents, data = make_pool(n=5)
        placer = BestFitPlacer(addrs, contents)
        seen = {placer.choose(data[i]) for i in range(5)}
        assert len(seen) == 5
        with pytest.raises(RuntimeError):
            placer.choose(data[0])


class TestHammingTreePlacer:
    def test_finds_exact_match(self):
        addrs, contents, data = make_pool()
        placer = HammingTreePlacer(addrs, contents)
        target_addr = addrs[13]
        chosen = placer.choose(contents[target_addr])
        assert hamming_distance(
            bits_to_bytes(contents[chosen]), bits_to_bytes(contents[target_addr])
        ) == 0

    def test_nearest_matches_bestfit(self):
        """BK-tree search is exact: it must match the brute-force optimum."""
        addrs, contents, data = make_pool(n=30, seed=3)
        tree = HammingTreePlacer(addrs, contents)
        brute = BestFitPlacer(addrs, contents)
        for i in range(8):
            target = data[i]
            t_addr = tree.choose(target)
            b_addr = brute.choose(target)
            t_dist = hamming_distance(
                bits_to_bytes(contents[t_addr]), bits_to_bytes(target)
            )
            b_dist = hamming_distance(
                bits_to_bytes(contents[b_addr]), bits_to_bytes(target)
            )
            assert t_dist == b_dist

    def test_release_and_reuse(self):
        addrs, contents, data = make_pool(n=4)
        placer = HammingTreePlacer(addrs, contents)
        claimed = [placer.choose(data[i]) for i in range(4)]
        assert placer.free_count() == 0
        placer.release(claimed[0], contents[claimed[0]])
        assert placer.free_count() == 1
        assert placer.choose(contents[claimed[0]]) == claimed[0]

    def test_rebuild_preserves_entries(self):
        addrs, contents, data = make_pool(n=40, seed=4)
        placer = HammingTreePlacer(addrs, contents)
        # Claim enough to trigger the half-dead rebuild.
        for i in range(25):
            placer.choose(data[i])
        assert placer.free_count() == 15
        remaining = {placer.choose(data[0]) for _ in range(15)}
        assert len(remaining) == 15

    def test_exhaustion_raises(self):
        addrs, contents, data = make_pool(n=2)
        placer = HammingTreePlacer(addrs, contents)
        placer.choose(data[0])
        placer.choose(data[0])
        with pytest.raises(RuntimeError):
            placer.choose(data[0])


class TestPNWPlacer:
    def test_fit_requires_enough_segments(self):
        addrs, contents, _ = make_pool(n=2)
        with pytest.raises(ValueError):
            PNWPlacer(5).fit(addrs, contents)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            PNWPlacer(3).predict(np.zeros(8))

    def test_choose_from_predicted_cluster(self):
        addrs, contents, data = make_pool(n=40, seed=5)
        placer = PNWPlacer(4, seed=5).fit(addrs, contents)
        target = data[3]
        cluster = placer.predict(target)
        chosen = placer.choose(target)
        # The chosen address was in the predicted cluster's pool.
        assert placer.predict(contents[chosen]) == cluster

    def test_fallback_to_nearest_cluster(self):
        addrs, contents, data = make_pool(n=12, seed=6)
        placer = PNWPlacer(3, seed=6).fit(addrs, contents)
        # Drain everything; the placer must fall back across clusters and
        # only raise when truly empty.
        for _ in range(12):
            placer.choose(data[0])
        with pytest.raises(RuntimeError):
            placer.choose(data[0])

    def test_pca_mode(self):
        addrs, contents, data = make_pool(n=40, seed=7)
        placer = PNWPlacer(3, pca_components=8, seed=7).fit(addrs, contents)
        assert placer.free_count() == 40
        addr = placer.choose(data[0])
        placer.release(addr, contents[addr])
        assert placer.free_count() == 40

    def test_clusters_group_similar_content(self):
        addrs, contents, data = make_pool(n=60, seed=8)
        placer = PNWPlacer(4, seed=8).fit(addrs, contents)
        labels = [placer.predict(data[i]) for i in range(60)]
        within, between = [], []
        for i in range(30):
            for j in range(i + 1, 30):
                d = float(np.abs(data[i] - data[j]).sum())
                (within if labels[i] == labels[j] else between).append(d)
        if within and between:
            assert np.mean(within) < np.mean(between)
