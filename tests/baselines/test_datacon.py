"""DATACON placer tests."""

import numpy as np
import pytest

from repro.baselines import DataConPlacer


def make_contents():
    """Three density groups of free segments."""
    rng = np.random.default_rng(0)
    contents = {}
    for i in range(10):
        contents[i * 64] = (rng.random(256) < 0.1).astype(np.float64)  # zeros
    for i in range(10, 20):
        contents[i * 64] = (rng.random(256) < 0.5).astype(np.float64)  # mixed
    for i in range(20, 30):
        contents[i * 64] = (rng.random(256) < 0.9).astype(np.float64)  # ones
    return contents


class TestDataCon:
    def test_validation(self):
        with pytest.raises(ValueError):
            DataConPlacer(low_threshold=0.7, high_threshold=0.3)

    def test_bucketing(self):
        contents = make_contents()
        placer = DataConPlacer().fit(list(contents), contents)
        sizes = placer.pool_sizes()
        assert sizes == {"zeros": 10, "mixed": 10, "ones": 10}

    def test_zero_heavy_value_gets_zero_segment(self):
        contents = make_contents()
        placer = DataConPlacer().fit(list(contents), contents)
        addr = placer.choose(np.zeros(256))
        assert contents[addr].mean() < 0.35

    def test_one_heavy_value_gets_one_segment(self):
        contents = make_contents()
        placer = DataConPlacer().fit(list(contents), contents)
        addr = placer.choose(np.ones(256))
        assert contents[addr].mean() > 0.65

    def test_fallback_order(self):
        contents = make_contents()
        placer = DataConPlacer().fit(list(contents), contents)
        # Drain the zeros pool; zero-heavy values fall back to mixed.
        for _ in range(10):
            placer.choose(np.zeros(256))
        addr = placer.choose(np.zeros(256))
        assert 0.35 <= contents[addr].mean() <= 0.65

    def test_release_rebuckets(self):
        contents = make_contents()
        placer = DataConPlacer().fit(list(contents), contents)
        addr = placer.choose(np.zeros(256))
        # Recycle it as all-ones content: it must land in the ones pool.
        placer.release(addr, np.ones(256))
        assert placer.pool_sizes()["ones"] == 11

    def test_exhaustion(self):
        placer = DataConPlacer().fit([], {})
        with pytest.raises(RuntimeError):
            placer.choose(np.zeros(8))

    def test_beats_arbitrary_on_density_skewed_content(self):
        """DATACON's claim: density-matched overwrites flip fewer bits."""
        from repro.util.bits import bits_to_bytes, hamming_distance

        contents = make_contents()
        placer = DataConPlacer().fit(list(contents), contents)
        rng = np.random.default_rng(1)
        datacon_flips = 0
        arbitrary_flips = 0
        addr_list = list(contents)
        for i in range(30):
            density = [0.1, 0.5, 0.9][i % 3]
            value = (rng.random(256) < density).astype(np.float64)
            addr = placer.choose(value)
            datacon_flips += hamming_distance(
                bits_to_bytes(contents[addr]), bits_to_bytes(value)
            )
            placer.release(addr, contents[addr])
            arb_addr = addr_list[i % len(addr_list)]
            arbitrary_flips += hamming_distance(
                bits_to_bytes(contents[arb_addr]), bits_to_bytes(value)
            )
        assert datacon_flips < arbitrary_flips
