"""Write-scheme tests: decode correctness, programmed-bit guarantees."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import DCW, FMR, FNW, FPC, Captopril, MinShift, NaiveWrite
from repro.util.bits import POPCOUNT_TABLE, hamming_bytes

ALL_SCHEMES = [NaiveWrite, DCW, FNW, MinShift, Captopril, FMR, FPC]


def apply_and_decode(scheme, old, new, addr=0):
    """Run prepare on a scheme and simulate the media state transition."""
    old = np.asarray(old, dtype=np.uint8)
    new = np.asarray(new, dtype=np.uint8)
    plan = scheme.prepare(addr, old, new)
    mask = (
        plan.program_mask
        if plan.program_mask is not None
        else np.full(new.size, 0xFF, dtype=np.uint8)
    )
    stored_after = np.bitwise_or(
        np.bitwise_and(old, np.bitwise_not(mask)),
        np.bitwise_and(plan.stored, mask),
    )
    decoded = scheme.decode(addr, stored_after)
    return plan, mask, stored_after, decoded


class TestDecodeCorrectness:
    @pytest.mark.parametrize("scheme_cls", ALL_SCHEMES)
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_random_roundtrip(self, scheme_cls, data):
        n = data.draw(st.integers(min_value=1, max_value=40))
        old = bytes(data.draw(st.binary(min_size=n, max_size=n)))
        new = bytes(data.draw(st.binary(min_size=n, max_size=n)))
        scheme = scheme_cls()
        _, _, _, decoded = apply_and_decode(
            scheme,
            np.frombuffer(old, dtype=np.uint8),
            np.frombuffer(new, dtype=np.uint8),
        )
        assert decoded.tobytes() == new

    @pytest.mark.parametrize("scheme_cls", ALL_SCHEMES)
    def test_sequential_writes_same_address(self, scheme_cls):
        rng = np.random.default_rng(0)
        scheme = scheme_cls()
        stored = rng.integers(0, 256, 16, dtype=np.uint8)
        for _ in range(10):
            new = rng.integers(0, 256, 16, dtype=np.uint8)
            _, _, stored, decoded = apply_and_decode(scheme, stored, new)
            assert np.array_equal(decoded, new)

    @pytest.mark.parametrize("scheme_cls", ALL_SCHEMES)
    def test_independent_addresses(self, scheme_cls):
        scheme = scheme_cls()
        old = np.zeros(8, dtype=np.uint8)
        a = np.full(8, 0xFF, dtype=np.uint8)
        b = np.full(8, 0x0F, dtype=np.uint8)
        _, _, stored_a, _ = apply_and_decode(scheme, old, a, addr=0)
        _, _, stored_b, _ = apply_and_decode(scheme, old, b, addr=64)
        assert np.array_equal(scheme.decode(0, stored_a), a)
        assert np.array_equal(scheme.decode(64, stored_b), b)


class TestProgrammedBits:
    def test_naive_programs_everything(self):
        plan, mask, _, _ = apply_and_decode(
            NaiveWrite(), np.zeros(8, dtype=np.uint8), np.zeros(8, dtype=np.uint8)
        )
        assert int(POPCOUNT_TABLE[mask].sum()) == 64

    def test_dcw_programs_exactly_hamming(self):
        rng = np.random.default_rng(1)
        old = rng.integers(0, 256, 32, dtype=np.uint8)
        new = rng.integers(0, 256, 32, dtype=np.uint8)
        _, mask, _, _ = apply_and_decode(DCW(), old, new)
        assert int(POPCOUNT_TABLE[mask].sum()) == hamming_bytes(old, new)

    def test_dcw_identical_programs_nothing(self):
        old = np.arange(16, dtype=np.uint8)
        _, mask, _, _ = apply_and_decode(DCW(), old, old.copy())
        assert not mask.any()

    def test_fnw_beats_dcw_on_near_complement(self):
        """Writing ~old over old: DCW flips everything, FNW flips ~nothing
        (just flags)."""
        old = np.full(16, 0x00, dtype=np.uint8)
        new = np.full(16, 0xFF, dtype=np.uint8)
        _, dcw_mask, _, _ = apply_and_decode(DCW(), old, new)
        fnw = FNW(word_bytes=4)
        plan, fnw_mask, _, _ = apply_and_decode(fnw, old, new)
        dcw_cost = int(POPCOUNT_TABLE[dcw_mask].sum())
        fnw_cost = int(POPCOUNT_TABLE[fnw_mask].sum()) + plan.aux_bits
        assert dcw_cost == 128
        assert fnw_cost <= 4  # one flag per word

    def test_fnw_word_guarantee(self):
        """FNW programs at most w/2 data cells + 1 flag per w-bit word."""
        rng = np.random.default_rng(2)
        fnw = FNW(word_bytes=4)
        old = rng.integers(0, 256, 32, dtype=np.uint8)
        new = rng.integers(0, 256, 32, dtype=np.uint8)
        plan, mask, _, _ = apply_and_decode(fnw, old, new)
        per_word = POPCOUNT_TABLE[mask].reshape(8, 4).sum(axis=1)
        assert (per_word <= 16).all()

    def test_minshift_finds_rotation(self):
        """A byte-rotated overwrite should cost ~only tag bits."""
        old = np.array([1, 2, 3, 4] * 4, dtype=np.uint8)
        new = np.array([4, 1, 2, 3] * 4, dtype=np.uint8)  # rot by 1
        scheme = MinShift(word_bytes=4)
        plan, mask, _, decoded = apply_and_decode(scheme, old, new)
        assert np.array_equal(decoded, new)
        assert int(POPCOUNT_TABLE[mask].sum()) == 0
        assert plan.aux_bits == 4 * scheme.tag_bits_per_word

    def test_minshift_validation(self):
        with pytest.raises(ValueError):
            MinShift(word_bytes=1)

    def test_captopril_degenerates_to_fnw_when_cold(self):
        """With no wear history, Captopril's decision matches FNW."""
        rng = np.random.default_rng(3)
        old = rng.integers(0, 256, 16, dtype=np.uint8)
        new = rng.integers(0, 256, 16, dtype=np.uint8)
        _, cap_mask, _, _ = apply_and_decode(Captopril(), old, new)
        _, fnw_mask, _, _ = apply_and_decode(FNW(), old, new)
        assert np.array_equal(cap_mask, fnw_mask)

    def test_captopril_avoids_hot_positions(self):
        """After heavy wear on specific positions, Captopril prefers the
        candidate that spares them."""
        cap = Captopril(word_bytes=4, hot_weight=50.0)
        # Burn in: make bit positions 0..15 (first two bytes) very hot.
        hot = np.zeros(32, dtype=np.float64)
        hot[:16] = 1000.0
        cap._position_wear = hot
        old = np.array([0x00, 0x00, 0x00, 0x00], dtype=np.uint8)
        # Option plain: flips concentrated on hot bytes; option flipped:
        # flips on cold bytes.
        new = np.array([0xFF, 0xFF, 0x00, 0x00], dtype=np.uint8)
        plan, mask, _, decoded = apply_and_decode(cap, old, new)
        assert np.array_equal(decoded, new)
        # The flipped candidate (~new) programs the two cold bytes instead.
        assert mask[0] == 0 and mask[1] == 0

    def test_reset_clears_metadata(self):
        for scheme in (FNW(), MinShift(), Captopril(), FMR()):
            old = np.zeros(8, dtype=np.uint8)
            new = np.full(8, 0xFF, dtype=np.uint8)
            apply_and_decode(scheme, old, new)
            scheme.reset()
            # After reset, stored bytes decode as-is (no flags remembered).
            raw = np.arange(8, dtype=np.uint8)
            assert np.array_equal(scheme.decode(0, raw), raw)


class TestOddSizes:
    @pytest.mark.parametrize("scheme_cls", [FNW, MinShift, Captopril, FMR, FPC])
    @pytest.mark.parametrize("n", [1, 3, 5, 7, 9, 15])
    def test_non_word_multiple_lengths(self, scheme_cls, n):
        rng = np.random.default_rng(n)
        scheme = scheme_cls()
        old = rng.integers(0, 256, n, dtype=np.uint8)
        new = rng.integers(0, 256, n, dtype=np.uint8)
        _, _, _, decoded = apply_and_decode(scheme, old, new)
        assert np.array_equal(decoded, new)
