"""Targeted tests for the FMR and FPC write schemes."""

import numpy as np
import pytest

from repro.baselines import DCW, FMR, FNW, FPC
from repro.util.bits import POPCOUNT_TABLE


def apply(scheme, old, new, addr=0):
    old = np.asarray(old, dtype=np.uint8)
    new = np.asarray(new, dtype=np.uint8)
    plan = scheme.prepare(addr, old, new)
    mask = plan.program_mask
    programmed = int(POPCOUNT_TABLE[mask].sum())
    stored = np.bitwise_or(
        np.bitwise_and(old, np.bitwise_not(mask)),
        np.bitwise_and(plan.stored, mask),
    )
    return plan, programmed, stored


class TestFMR:
    def test_detects_mirror(self):
        """Writing a word's bit-reversal over itself costs only tag bits."""
        old = np.array([0b10110001, 0x00, 0xFF, 0b01010101], dtype=np.uint8)
        mirrored = np.array(
            [0b10101010, 0xFF, 0x00, 0b10001101], dtype=np.uint8
        )
        scheme = FMR()
        plan, programmed, stored = apply(scheme, old, mirrored)
        assert programmed == 0
        assert plan.aux_bits == 2
        assert np.array_equal(scheme.decode(0, stored), mirrored)

    def test_detects_rotation(self):
        """A 1-bit rotated overwrite costs only tag bits."""
        rng = np.random.default_rng(0)
        old32 = int(rng.integers(0, 2**32, dtype=np.uint64))
        old = np.array(
            [(old32 >> s) & 0xFF for s in (24, 16, 8, 0)], dtype=np.uint8
        )
        # new = rotate-left(old): the scheme's rotate-right candidate maps
        # it straight back onto the stored content.
        rot = ((old32 << 1) | (old32 >> 31)) & 0xFFFFFFFF
        new = np.array(
            [(rot >> s) & 0xFF for s in (24, 16, 8, 0)], dtype=np.uint8
        )
        scheme = FMR()
        plan, programmed, stored = apply(scheme, old, new)
        assert programmed == 0
        assert np.array_equal(scheme.decode(0, stored), new)

    def test_never_worse_than_fnw_including_tags(self):
        """FMR's candidate set strictly contains FNW's {identity, flip}."""
        rng = np.random.default_rng(1)
        for _ in range(20):
            old = rng.integers(0, 256, 16, dtype=np.uint8)
            new = rng.integers(0, 256, 16, dtype=np.uint8)
            fmr_plan, fmr_bits, _ = apply(FMR(), old, new)
            fnw_plan, fnw_bits, _ = apply(FNW(word_bytes=4), old, new)
            # 2 tag bits/word vs 1 flag bit/word: compare total cost with a
            # one-extra-tag-bit-per-word allowance.
            assert fmr_bits + fmr_plan.aux_bits <= fnw_bits + fnw_plan.aux_bits + 4


class TestFPC:
    def test_zero_word_programs_nothing(self):
        """An all-zero word over arbitrary stale content writes 0 cells."""
        rng = np.random.default_rng(2)
        old = rng.integers(0, 256, 4, dtype=np.uint8)
        scheme = FPC()
        plan, programmed, stored = apply(scheme, old, np.zeros(4, dtype=np.uint8))
        assert programmed == 0
        assert plan.aux_bits == 2  # prefix changed from RAW
        assert np.array_equal(
            scheme.decode(0, stored), np.zeros(4, dtype=np.uint8)
        )

    def test_sign_extended_8bit_writes_one_byte(self):
        """A small integer (0x0000004D big-endian) programs <= 8 cells."""
        old = np.full(4, 0xAA, dtype=np.uint8)
        new = np.array([0x00, 0x00, 0x00, 0x4D], dtype=np.uint8)
        scheme = FPC()
        plan, programmed, stored = apply(scheme, old, new)
        assert programmed <= 8
        assert np.array_equal(scheme.decode(0, stored), new)

    def test_negative_sign_extension(self):
        """0xFFFFFF80 (sign-extended -128) compresses to one byte."""
        old = np.zeros(4, dtype=np.uint8)
        new = np.array([0xFF, 0xFF, 0xFF, 0x80], dtype=np.uint8)
        scheme = FPC()
        plan, programmed, stored = apply(scheme, old, new)
        assert programmed <= 8
        assert np.array_equal(scheme.decode(0, stored), new)

    def test_sign_extended_16bit(self):
        old = np.zeros(4, dtype=np.uint8)
        new = np.array([0x00, 0x00, 0x12, 0x34], dtype=np.uint8)
        scheme = FPC()
        plan, programmed, stored = apply(scheme, old, new)
        assert programmed <= 16
        assert np.array_equal(scheme.decode(0, stored), new)

    def test_beats_dcw_writing_integers_over_stale_content(self):
        """Writing small-integer records over *fresh* (random stale)
        locations — the append / first-placement case — programs far fewer
        cells under FPC, because three of every four bytes are never
        touched at all."""
        rng = np.random.default_rng(3)
        fpc_total = dcw_total = 0
        for addr in range(20):
            stale = rng.integers(0, 256, 32, dtype=np.uint8)
            values = rng.integers(0, 128, 8)  # 8 big-endian int32 fields
            new = np.zeros(32, dtype=np.uint8)
            new[3::4] = values
            p, bits, _ = apply(FPC(), stale, new, addr=addr)
            fpc_total += bits + p.aux_bits
            _, bits, _ = apply(DCW(), stale, new, addr=addr)
            dcw_total += bits
        assert fpc_total < 0.5 * dcw_total

    def test_uncompressible_equals_dcw(self):
        rng = np.random.default_rng(4)
        old = rng.integers(0, 256, 8, dtype=np.uint8)
        new = rng.integers(128, 256, 8, dtype=np.uint8)  # raw pattern
        _, fpc_bits, _ = apply(FPC(), old, new)
        _, dcw_bits, _ = apply(DCW(), old, new)
        assert fpc_bits == dcw_bits
