"""Persistent pool and transaction tests."""

import pytest

from repro.nvm import MemoryController, NVMDevice
from repro.pmem import PersistentPool


def make_pool(n_segments=16, log_segments=2, seed=0):
    dev = NVMDevice(
        capacity_bytes=n_segments * 64,
        segment_size=64,
        initial_fill="random",
        seed=seed,
    )
    return PersistentPool(MemoryController(dev), log_segments=log_segments), dev


class TestAllocator:
    def test_capacity_excludes_log(self):
        pool, _ = make_pool(n_segments=16, log_segments=2)
        assert pool.capacity_objects == 14

    def test_alloc_free_cycle(self):
        pool, _ = make_pool()
        addr = pool.alloc()
        pool.free(addr)
        assert pool.alloc() is not None

    def test_alloc_exhaustion(self):
        pool, _ = make_pool(n_segments=4, log_segments=2)
        pool.alloc()
        pool.alloc()
        with pytest.raises(RuntimeError):
            pool.alloc()

    def test_double_free_raises(self):
        pool, _ = make_pool()
        addr = pool.alloc()
        pool.free(addr)
        with pytest.raises(KeyError, match="double free"):
            pool.free(addr)

    def test_free_rejects_log_region_address(self):
        pool, _ = make_pool(log_segments=2)
        with pytest.raises(ValueError, match="log"):
            pool.free(64)  # inside the 2-segment log region

    def test_free_rejects_metadata_region_address(self):
        dev = NVMDevice(
            capacity_bytes=16 * 64, segment_size=64,
            initial_fill="random", seed=0,
        )
        pool = PersistentPool(
            MemoryController(dev), log_segments=2, meta_segments=2
        )
        with pytest.raises(ValueError, match="metadata"):
            pool.free(3 * 64)

    def test_free_rejects_unaligned_address(self):
        pool, _ = make_pool()
        addr = pool.alloc()
        with pytest.raises(ValueError, match="segment-aligned"):
            pool.free(addr + 1)

    def test_free_never_allocated_object_address(self):
        pool, _ = make_pool()
        free_addr = pool.free_addresses()[0]
        with pytest.raises(KeyError, match="already free"):
            pool.free(free_addr)

    def test_mark_allocated_is_idempotent_and_validated(self):
        pool, _ = make_pool()
        addr = pool.alloc()
        pool.mark_allocated(addr)  # already allocated: no-op
        assert addr in pool.allocated_addresses()
        free_addr = pool.free_addresses()[0]
        pool.mark_allocated(free_addr)
        assert free_addr in pool.allocated_addresses()
        assert free_addr not in pool.free_addresses()
        with pytest.raises(KeyError):
            pool.mark_allocated(3)  # not a pool segment

    def test_mark_allocated_many_is_fast_path(self):
        """O(1) per call: re-registering every segment of a larger pool
        must not degrade (the old implementation rebuilt a list per call)."""
        pool, _ = make_pool(n_segments=256, log_segments=2)
        for addr in list(pool.free_addresses()):
            pool.mark_allocated(addr)
        assert pool.free_addresses() == []
        assert len(pool.allocated_addresses()) == pool.capacity_objects

    def test_allocations_avoid_log_region(self):
        pool, _ = make_pool(log_segments=3)
        for _ in range(pool.capacity_objects):
            assert pool.alloc() >= 3 * 64

    def test_validation(self):
        dev = NVMDevice(capacity_bytes=128, segment_size=64)
        with pytest.raises(ValueError):
            PersistentPool(MemoryController(dev), log_segments=2)


class TestTransactions:
    def test_commit_persists(self):
        pool, _ = make_pool()
        addr = pool.alloc()
        with pool.transaction() as tx:
            tx.write(addr, b"A" * 64)
        assert pool.read(addr, 64) == b"A" * 64

    def test_exception_rolls_back(self):
        pool, _ = make_pool()
        addr = pool.alloc()
        pool.write(addr, b"X" * 64)
        with pytest.raises(ValueError):
            with pool.transaction() as tx:
                tx.write(addr, b"Y" * 64)
                raise ValueError("boom")
        assert pool.read(addr, 64) == b"X" * 64

    def test_explicit_abort_is_swallowed(self):
        pool, _ = make_pool()
        addr = pool.alloc()
        pool.write(addr, b"X" * 64)
        with pool.transaction() as tx:
            tx.write(addr, b"Y" * 64)
            tx.abort()
        assert pool.read(addr, 64) == b"X" * 64

    def test_multi_write_rollback_order(self):
        pool, _ = make_pool(n_segments=16, log_segments=6)
        a, b = pool.alloc(), pool.alloc()
        pool.write(a, b"1" * 64)
        pool.write(b, b"2" * 64)
        with pool.transaction() as tx:
            tx.write(a, b"3" * 64)
            tx.write(b, b"4" * 64)
            tx.write(a, b"5" * 64)  # second write to the same address
            tx.abort()
        assert pool.read(a, 64) == b"1" * 64
        assert pool.read(b, 64) == b"2" * 64

    def test_write_outside_transaction_raises(self):
        pool, _ = make_pool()
        tx = pool.transaction()
        with pytest.raises(RuntimeError):
            tx.write(pool.alloc(), b"x")

    def test_undo_log_traffic_is_accounted(self):
        """Transactional writes must cost more than raw writes (log traffic),
        which is how PMDK overhead appears in Figure 1."""
        pool_tx, dev_tx = make_pool(seed=5)
        pool_raw, dev_raw = make_pool(seed=5)
        addr_tx = pool_tx.alloc()
        addr_raw = pool_raw.alloc()
        payload = b"Z" * 64
        with pool_tx.transaction() as tx:
            tx.write(addr_tx, payload)
        pool_raw.write(addr_raw, payload)
        assert dev_tx.stats.writes > dev_raw.stats.writes
        assert dev_tx.stats.write_energy_pj > dev_raw.stats.write_energy_pj

    def test_log_reused_across_transactions(self):
        """Each transaction restarts the per-tx undo log (PMDK style)."""
        pool, _ = make_pool(n_segments=8, log_segments=2)
        addr = pool.alloc()
        for i in range(20):
            with pool.transaction() as tx:
                tx.write(addr, bytes([i]) * 64)
        assert pool.read(addr, 64) == bytes([19]) * 64

    def test_oversized_transaction_raises(self):
        """A transaction bigger than the log region is rejected upfront."""
        pool, _ = make_pool(n_segments=8, log_segments=2)
        addrs = [pool.alloc() for _ in range(4)]
        with pytest.raises(RuntimeError):
            with pool.transaction() as tx:
                for addr in addrs:
                    tx.write(addr, b"Z" * 64)  # 4x(16+64+5) > 112 B of log

    def test_nested_transaction_raises(self):
        """The undo log holds one transaction; nesting must fail loudly
        instead of silently resetting the first transaction's records."""
        pool, _ = make_pool()
        addr = pool.alloc()
        pool.write(addr, b"X" * 64)
        with pool.transaction() as tx:
            tx.write(addr, b"Y" * 64)
            with pytest.raises(RuntimeError, match="already active"):
                pool.transaction().__enter__()
        # The outer transaction still committed intact.
        assert pool.read(addr, 64) == b"Y" * 64

    def test_transaction_object_reuse_raises(self):
        pool, _ = make_pool()
        addr = pool.alloc()
        tx = pool.transaction()
        with tx:
            tx.write(addr, b"A" * 64)
        with pytest.raises(RuntimeError, match="single-use"):
            tx.__enter__()

    def test_reentering_active_transaction_raises(self):
        pool, _ = make_pool()
        tx = pool.transaction()
        tx.__enter__()
        with pytest.raises(RuntimeError, match="already active"):
            tx.__enter__()

    def test_rolled_back_transaction_is_also_single_use(self):
        pool, _ = make_pool()
        addr = pool.alloc()
        tx = pool.transaction()
        with tx:
            tx.write(addr, b"A" * 64)
            tx.abort()
        with pytest.raises(RuntimeError, match="single-use"):
            tx.__enter__()
        # And a fresh transaction works after the rollback.
        with pool.transaction() as tx2:
            tx2.write(addr, b"B" * 64)
        assert pool.read(addr, 64) == b"B" * 64
