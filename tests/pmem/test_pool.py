"""Persistent pool and transaction tests."""

import pytest

from repro.nvm import MemoryController, NVMDevice
from repro.pmem import PersistentPool


def make_pool(n_segments=16, log_segments=2, seed=0):
    dev = NVMDevice(
        capacity_bytes=n_segments * 64,
        segment_size=64,
        initial_fill="random",
        seed=seed,
    )
    return PersistentPool(MemoryController(dev), log_segments=log_segments), dev


class TestAllocator:
    def test_capacity_excludes_log(self):
        pool, _ = make_pool(n_segments=16, log_segments=2)
        assert pool.capacity_objects == 14

    def test_alloc_free_cycle(self):
        pool, _ = make_pool()
        addr = pool.alloc()
        pool.free(addr)
        assert pool.alloc() is not None

    def test_alloc_exhaustion(self):
        pool, _ = make_pool(n_segments=4, log_segments=2)
        pool.alloc()
        pool.alloc()
        with pytest.raises(RuntimeError):
            pool.alloc()

    def test_double_free_raises(self):
        pool, _ = make_pool()
        addr = pool.alloc()
        pool.free(addr)
        with pytest.raises(KeyError):
            pool.free(addr)

    def test_allocations_avoid_log_region(self):
        pool, _ = make_pool(log_segments=3)
        for _ in range(pool.capacity_objects):
            assert pool.alloc() >= 3 * 64

    def test_validation(self):
        dev = NVMDevice(capacity_bytes=128, segment_size=64)
        with pytest.raises(ValueError):
            PersistentPool(MemoryController(dev), log_segments=2)


class TestTransactions:
    def test_commit_persists(self):
        pool, _ = make_pool()
        addr = pool.alloc()
        with pool.transaction() as tx:
            tx.write(addr, b"A" * 64)
        assert pool.read(addr, 64) == b"A" * 64

    def test_exception_rolls_back(self):
        pool, _ = make_pool()
        addr = pool.alloc()
        pool.write(addr, b"X" * 64)
        with pytest.raises(ValueError):
            with pool.transaction() as tx:
                tx.write(addr, b"Y" * 64)
                raise ValueError("boom")
        assert pool.read(addr, 64) == b"X" * 64

    def test_explicit_abort_is_swallowed(self):
        pool, _ = make_pool()
        addr = pool.alloc()
        pool.write(addr, b"X" * 64)
        with pool.transaction() as tx:
            tx.write(addr, b"Y" * 64)
            tx.abort()
        assert pool.read(addr, 64) == b"X" * 64

    def test_multi_write_rollback_order(self):
        pool, _ = make_pool(n_segments=16, log_segments=6)
        a, b = pool.alloc(), pool.alloc()
        pool.write(a, b"1" * 64)
        pool.write(b, b"2" * 64)
        with pool.transaction() as tx:
            tx.write(a, b"3" * 64)
            tx.write(b, b"4" * 64)
            tx.write(a, b"5" * 64)  # second write to the same address
            tx.abort()
        assert pool.read(a, 64) == b"1" * 64
        assert pool.read(b, 64) == b"2" * 64

    def test_write_outside_transaction_raises(self):
        pool, _ = make_pool()
        tx = pool.transaction()
        with pytest.raises(RuntimeError):
            tx.write(pool.alloc(), b"x")

    def test_undo_log_traffic_is_accounted(self):
        """Transactional writes must cost more than raw writes (log traffic),
        which is how PMDK overhead appears in Figure 1."""
        pool_tx, dev_tx = make_pool(seed=5)
        pool_raw, dev_raw = make_pool(seed=5)
        addr_tx = pool_tx.alloc()
        addr_raw = pool_raw.alloc()
        payload = b"Z" * 64
        with pool_tx.transaction() as tx:
            tx.write(addr_tx, payload)
        pool_raw.write(addr_raw, payload)
        assert dev_tx.stats.writes > dev_raw.stats.writes
        assert dev_tx.stats.write_energy_pj > dev_raw.stats.write_energy_pj

    def test_log_reused_across_transactions(self):
        """Each transaction restarts the per-tx undo log (PMDK style)."""
        pool, _ = make_pool(n_segments=8, log_segments=2)
        addr = pool.alloc()
        for i in range(20):
            with pool.transaction() as tx:
                tx.write(addr, bytes([i]) * 64)
        assert pool.read(addr, 64) == bytes([19]) * 64

    def test_oversized_transaction_raises(self):
        """A transaction bigger than the log region is rejected upfront."""
        pool, _ = make_pool(n_segments=8, log_segments=2)
        addrs = [pool.alloc() for _ in range(4)]
        with pytest.raises(RuntimeError):
            with pool.transaction() as tx:
                for addr in addrs:
                    tx.write(addr, b"Z" * 64)  # 4x(12+64+1) > 112 B of log
