"""Property tests: transactions vs. a shadow model under random schedules."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nvm import MemoryController, NVMDevice
from repro.pmem import PersistentPool


def build_pool(seed=0, n_segments=20):
    device = NVMDevice(
        capacity_bytes=n_segments * 64,
        segment_size=64,
        initial_fill="random",
        seed=seed,
    )
    return PersistentPool(MemoryController(device), log_segments=8)


@st.composite
def transaction_schedules(draw):
    """A list of transactions, each a list of (slot, payload) writes plus an
    abort flag."""
    n_tx = draw(st.integers(1, 8))
    schedule = []
    for _ in range(n_tx):
        writes = draw(
            st.lists(
                st.tuples(st.integers(0, 5), st.binary(min_size=64, max_size=64)),
                min_size=1,
                max_size=5,
            )
        )
        abort = draw(st.booleans())
        schedule.append((writes, abort))
    return schedule


class TestTransactionModel:
    @given(schedule=transaction_schedules())
    @settings(max_examples=40, deadline=None)
    def test_random_schedule_matches_model(self, schedule):
        pool = build_pool()
        slots = [pool.alloc() for _ in range(6)]
        model = {addr: pool.read(addr, 64) for addr in slots}
        for writes, abort in schedule:
            try:
                with pool.transaction() as tx:
                    staged = dict(model)
                    for slot, payload in writes:
                        tx.write(slots[slot], payload)
                        staged[slots[slot]] = payload
                    if abort:
                        raise _Rollback()
                model = staged  # committed
            except _Rollback:
                pass  # rolled back: model unchanged
            for addr, expected in model.items():
                assert pool.read(addr, 64) == expected

    def test_interleaved_alloc_free_transactions(self):
        pool = build_pool(seed=3, n_segments=16)
        rng = np.random.default_rng(1)
        live: dict[int, bytes] = {}
        for step in range(150):
            roll = rng.random()
            if roll < 0.4 and len(live) < pool.capacity_objects:
                addr = pool.alloc()
                payload = rng.integers(0, 256, 64, dtype=np.uint8).tobytes()
                with pool.transaction() as tx:
                    tx.write(addr, payload)
                live[addr] = payload
            elif roll < 0.6 and live:
                addr = list(live)[int(rng.integers(0, len(live)))]
                pool.free(addr)
                del live[addr]
            elif live:
                addr = list(live)[int(rng.integers(0, len(live)))]
                assert pool.read(addr, 64) == live[addr], step


class _Rollback(Exception):
    pass
