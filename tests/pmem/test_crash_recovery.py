"""Crash-consistency tests: recovery from the media-resident undo log.

A "crash" is simulated by abandoning the pool object mid-transaction and
constructing a fresh :class:`PersistentPool` over the *same device* with
``recover=True`` — exactly what a restart over real persistent memory does.
"""

import numpy as np
import pytest

from repro.nvm import MemoryController, NVMDevice
from repro.pmem import PersistentPool
from repro.testing import CrashError, FaultInjector


def make_device(n_segments=24, seed=0):
    return NVMDevice(
        capacity_bytes=n_segments * 64,
        segment_size=64,
        initial_fill="random",
        seed=seed,
    )


def crash_mid_transaction(device, payloads: list[tuple[int, bytes]]):
    """Open a pool, write ``payloads`` inside a transaction, then 'crash'
    (never commit).  Returns the allocated addresses."""
    pool = PersistentPool(MemoryController(device), log_segments=8)
    addrs = [pool.alloc() for _ in range(len(payloads))]
    tx = pool.transaction()
    tx.__enter__()
    for addr, (_, data) in zip(addrs, payloads):
        tx.write(addr, data)
    # No __exit__: process dies here. The DRAM pool object is discarded.
    return addrs


class TestCrashRecovery:
    def test_uncommitted_transaction_is_rolled_back(self):
        device = make_device(seed=1)
        pool = PersistentPool(MemoryController(device), log_segments=8)
        addr = pool.alloc()
        pool.write(addr, b"STABLE" + bytes(58))
        # Crash mid-transaction on the same device.
        tx = pool.transaction()
        tx.__enter__()
        tx.write(addr, b"TORN" + bytes(60))
        del tx, pool

        recovered = PersistentPool(
            MemoryController(device), log_segments=8, recover=True
        )
        assert recovered.recovered_records == 1
        assert recovered.read(addr, 6) == b"STABLE"

    def test_multi_write_crash_rolls_back_everything(self):
        device = make_device(seed=2)
        baseline = {
            64 * 8: device.peek(64 * 8, 64).tobytes(),
            64 * 9: device.peek(64 * 9, 64).tobytes(),
            64 * 10: device.peek(64 * 10, 64).tobytes(),
        }
        crash_mid_transaction(
            device,
            [(0, b"A" * 64), (1, b"B" * 64), (2, b"C" * 64)],
        )
        recovered = PersistentPool(
            MemoryController(device), log_segments=8, recover=True
        )
        assert recovered.recovered_records == 3
        for addr, old in baseline.items():
            assert recovered.read(addr, 64) == old

    def test_committed_transaction_survives_recovery(self):
        device = make_device(seed=3)
        pool = PersistentPool(MemoryController(device), log_segments=8)
        addr = pool.alloc()
        with pool.transaction() as tx:
            tx.write(addr, b"DURABLE!" + bytes(56))
        del pool

        recovered = PersistentPool(
            MemoryController(device), log_segments=8, recover=True
        )
        assert recovered.recovered_records == 0
        assert recovered.read(addr, 8) == b"DURABLE!"

    def test_clean_device_recovery_is_noop(self):
        device = make_device(seed=4)
        # Fresh random device: flag byte is random — initialise it first.
        pool = PersistentPool(MemoryController(device), log_segments=8)
        with pool.transaction() as tx:
            pass
        del pool
        recovered = PersistentPool(
            MemoryController(device), log_segments=8, recover=True
        )
        assert recovered.recovered_records == 0

    def test_stale_records_from_prior_tx_not_replayed(self):
        """After tx1 commits, a crash in a smaller tx2 must roll back only
        tx2's records — the scan terminator stops before tx1 leftovers."""
        device = make_device(seed=5)
        pool = PersistentPool(MemoryController(device), log_segments=8)
        a, b, c = pool.alloc(), pool.alloc(), pool.alloc()
        with pool.transaction() as tx:  # tx1: three records
            tx.write(a, b"1" * 64)
            tx.write(b, b"2" * 64)
            tx.write(c, b"3" * 64)
        tx2 = pool.transaction()
        tx2.__enter__()
        tx2.write(a, b"X" * 64)  # tx2: one record, then crash
        del tx2, pool

        recovered = PersistentPool(
            MemoryController(device), log_segments=8, recover=True
        )
        assert recovered.recovered_records == 1
        assert recovered.read(a, 64) == b"1" * 64  # tx2 undone
        assert recovered.read(b, 64) == b"2" * 64  # tx1 intact
        assert recovered.read(c, 64) == b"3" * 64

    def test_mark_allocated_restores_liveness(self):
        device = make_device(seed=6)
        pool = PersistentPool(MemoryController(device), log_segments=8)
        addr = pool.alloc()
        pool.write(addr, b"live" + bytes(60))
        del pool
        recovered = PersistentPool(
            MemoryController(device), log_segments=8, recover=True
        )
        recovered.mark_allocated(addr)
        with pytest.raises(KeyError):
            recovered.mark_allocated(3)  # not a pool segment address
        # The re-registered segment is not handed out again.
        handed = {recovered.alloc() for _ in range(recovered.capacity_objects - 1)}
        assert addr not in handed

    def test_recover_resets_counter_on_clean_flag(self):
        """A second recover() on clean media must report 0, not echo the
        previous recovery's count."""
        device = make_device(seed=8)
        crash_mid_transaction(device, [(0, b"A" * 64), (1, b"B" * 64)])
        pool = PersistentPool(MemoryController(device), log_segments=8)
        assert pool.recover() == 2
        assert pool.recovered_records == 2
        assert pool.recover() == 0
        assert pool.recovered_records == 0

    def test_recover_is_idempotent(self):
        """Recovering twice (without new transactions) is harmless: undo
        records replay absolute old content, not deltas."""
        device = make_device(seed=9)
        baseline = device.peek(64 * 8, 64).tobytes()
        crash_mid_transaction(device, [(0, b"A" * 64)])
        for _ in range(3):
            pool = PersistentPool(
                MemoryController(device), log_segments=8, recover=True
            )
            assert pool.read(64 * 8, 64) == baseline

    def test_crash_during_recovery_then_recover_again(self):
        """A crash tearing a rollback write mid-recovery leaves the log
        active (the flag clears only after every record replays), so the
        next recovery repairs everything."""
        device = make_device(seed=10)
        baseline = {
            64 * 8: device.peek(64 * 8, 64).tobytes(),
            64 * 9: device.peek(64 * 9, 64).tobytes(),
            64 * 10: device.peek(64 * 10, 64).tobytes(),
        }
        crash_mid_transaction(
            device, [(0, b"A" * 64), (1, b"B" * 64), (2, b"C" * 64)]
        )
        faults = FaultInjector()
        faults.arm(
            "recover.rollback", error=CrashError, after=1, torn_fraction=0.5
        )
        crashing = PersistentPool(
            MemoryController(device), log_segments=8, faults=faults
        )
        with pytest.raises(CrashError):
            crashing.recover()
        # The second rollback write landed only half: media is now in a
        # state neither before nor after the transaction...
        recovered = PersistentPool(
            MemoryController(device), log_segments=8, recover=True
        )
        # ...but the log survived the crash, so recovery completes now.
        assert recovered.recovered_records == 3
        for addr, old in baseline.items():
            assert recovered.read(addr, 64) == old

    def test_crash_error_in_context_manager_skips_rollback(self):
        """CrashError means process death: the media must be left exactly
        as the crash left it — rolled back only by the *next* recover()."""
        device = make_device(seed=11)
        faults = FaultInjector()
        pool = PersistentPool(
            MemoryController(device), log_segments=8, faults=faults
        )
        addr = pool.alloc()
        pool.write(addr, b"OLD" + bytes(61))
        faults.arm("tx.commit", error=CrashError)
        with pytest.raises(CrashError):
            with pool.transaction() as tx:
                tx.write(addr, b"NEW" + bytes(61))
        # No rollback happened: the in-place write is still on the media
        # and the log is still active.
        assert device.peek(addr, 3).tobytes() == b"NEW"
        assert device.peek(0, 1)[0] == 1
        recovered = PersistentPool(
            MemoryController(device), log_segments=8, recover=True
        )
        assert recovered.recovered_records == 1
        assert recovered.read(addr, 3) == b"OLD"

    def test_torn_log_record_over_stale_valid_byte(self):
        """The log region is reused: after a committed multi-record
        transaction, a crash tearing the *first* log write of the next
        transaction leaves stale bytes (including a stale valid byte
        further out) behind the torn record.  The CRC and pre-zeroed valid
        byte must keep recovery from replaying garbage."""
        device = make_device(seed=12)
        faults = FaultInjector()
        pool = PersistentPool(
            MemoryController(device), log_segments=8, faults=faults
        )
        a, b = pool.alloc(), pool.alloc()
        with pool.transaction() as tx:  # big committed tx fills the log
            tx.write(a, b"1" * 64)
            tx.write(b, b"2" * 64)
        with pool.transaction() as tx:
            tx.write(a, b"3" * 64)
        # Next transaction: tear its first (and only) undo record.
        faults.arm("tx.log", error=CrashError, torn_fraction=0.6)
        with pytest.raises(CrashError):
            with pool.transaction() as tx:
                tx.write(a, b"X" * 64)
        recovered = PersistentPool(
            MemoryController(device), log_segments=8, recover=True
        )
        # The torn record must not replay; nothing was written in place,
        # so the committed content stands.
        assert recovered.recovered_records == 0
        assert recovered.read(a, 64) == b"3" * 64
        assert recovered.read(b, 64) == b"2" * 64

    def test_recovery_under_random_crashes(self):
        """Random crash points across a random workload: the surviving
        state always equals the last committed state."""
        rng = np.random.default_rng(7)
        device = make_device(n_segments=32, seed=7)
        pool = PersistentPool(MemoryController(device), log_segments=8)
        slots = [pool.alloc() for _ in range(6)]
        committed = {addr: pool.read(addr, 64) for addr in slots}
        for round_idx in range(25):
            n_writes = int(rng.integers(1, 4))
            writes = [
                (slots[int(rng.integers(0, 6))],
                 rng.integers(0, 256, 64, dtype=np.uint8).tobytes())
                for _ in range(n_writes)
            ]
            crash = rng.random() < 0.5
            if crash:
                tx = pool.transaction()
                tx.__enter__()
                for addr, data in writes:
                    tx.write(addr, data)
                # Crash + restart.
                pool = PersistentPool(
                    MemoryController(device), log_segments=8, recover=True
                )
                for addr in slots:
                    pool.mark_allocated(addr)
            else:
                with pool.transaction() as tx:
                    for addr, data in writes:
                        tx.write(addr, data)
                for addr, data in writes:
                    committed[addr] = data
            for addr, expected in committed.items():
                assert pool.read(addr, 64) == expected, round_idx
